"""Instruction-level execution tracing.

A debugging aid for guest code (and for demonstrating what the VM
actually executes): attach a :class:`Tracer` to a process, run, and get
an annotated instruction trace with module/symbol attribution —
including the exact moment control passes through an interception stub
into ``__lfi_eval`` and back out to the original function or the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .process import Process


@dataclass(frozen=True)
class TraceEntry:
    """One executed instruction."""

    index: int
    addr: int
    text: str
    module: Optional[str]
    symbol: Optional[str]

    def render(self) -> str:
        where = ""
        if self.module:
            where = f"  [{self.module}"
            if self.symbol:
                where += f":{self.symbol}"
            where += "]"
        return f"{self.index:6d}  {self.addr:08x}  {self.text:<32}{where}"


class Tracer:
    """Records executed instructions; attach/detach around a run."""

    def __init__(self, proc: Process, *, limit: int = 100_000) -> None:
        self.proc = proc
        self.limit = limit
        self.entries: List[TraceEntry] = []
        self.truncated = False
        self._attached = False

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Tracer":
        self.attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def attach(self) -> None:
        if self._attached:
            return
        self.proc.cpu.tracer = self._record
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        self.proc.cpu.tracer = None
        self._attached = False

    # -- recording ----------------------------------------------------------

    def _record(self, addr: int, insn) -> None:
        if len(self.entries) >= self.limit:
            self.truncated = True
            return
        module = self.proc.module_for_addr(addr)
        self.entries.append(TraceEntry(
            index=len(self.entries),
            addr=addr,
            text=insn.render(),
            module=module.image.soname if module else None,
            symbol=self.proc.symbol_for_addr(addr),
        ))

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def calls_to(self, symbol: str) -> List[TraceEntry]:
        """Entries executing inside the named function."""
        return [e for e in self.entries if e.symbol == symbol]

    def modules_touched(self) -> List[str]:
        seen: List[str] = []
        for entry in self.entries:
            if entry.module and entry.module not in seen:
                seen.append(entry.module)
        return seen

    def render(self, *, last: Optional[int] = None) -> str:
        entries = self.entries if last is None else self.entries[-last:]
        lines = [e.render() for e in entries]
        if self.truncated:
            lines.append(f"... truncated at {self.limit} instructions")
        return "\n".join(lines)

    # -- observability bridge ------------------------------------------------

    def to_events(self, log, *, severity: str = "debug",
                  last: Optional[int] = None) -> int:
        """Emit the recorded trace into an :class:`~repro.obs.EventLog`.

        One ``"instruction"`` event per entry, on the same JSONL stream
        as injection and campaign events — so an execution trace and
        the faults injected during it line up in one file.  Returns the
        number of events emitted (plus one ``"trace.truncated"``
        warning when the instruction limit was hit).
        """
        entries = self.entries if last is None else self.entries[-last:]
        for entry in entries:
            log.emit("instruction", severity=severity,
                     index=entry.index, addr=f"{entry.addr:#010x}",
                     text=entry.text, module=entry.module,
                     symbol=entry.symbol)
        emitted = len(entries)
        if self.truncated:
            log.emit("trace.truncated", severity="warning",
                     limit=self.limit)
            emitted += 1
        return emitted
