"""§6.2 Efficiency: profiling time scales with code size.

Paper: 0.2 s for libdmx (18 exported functions, 8 KB code segment) up to
20 s for libxml2 (1,612 exported functions, 897 KB); "profiling time is
mainly influenced by code size"; propagation hop counts stay <= 3.

The benchmark profiles the corpus ladder and checks monotonic scaling
with code size plus the hop bound.

Set ``REPRO_BENCH_FAST=1`` for a CI-sized smoke run: only the small
end of the ladder is profiled and the code-size scaling bar is skipped
(it needs the two-orders-of-magnitude spread); the hop bound and the
interactivity ceiling still apply.
"""

from __future__ import annotations

import os
import time

from repro.core.profiler import Profiler
from repro.corpus import EFFICIENCY_LADDER, build_table2_library
from repro.corpus.libraries import TABLE2_ROWS
from repro.kernel import build_kernel_image
from repro.platform import LINUX_X86, SOLARIS_SPARC, WINDOWS_X86

from _benchutil import print_table

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

_LADDER = EFFICIENCY_LADDER[:3] if FAST else EFFICIENCY_LADDER

_PLATFORM_OF = {row[0]: row[1] for row in TABLE2_ROWS}


def _profile_ladder():
    from repro.corpus.libc import libc
    out = []
    # libc first: its syscall wrappers exercise real dependent-function
    # hops (close -> kernel = 1; opendir -> open -> kernel = 2)
    built = libc(LINUX_X86)
    profiler = Profiler(LINUX_X86, {built.image.soname: built.image},
                        build_kernel_image(LINUX_X86))
    started = time.perf_counter()
    profiler.profile_library(built.image.soname)
    out.append(("libc.so.6", len(built.image.exports),
                built.image.code_size(),
                time.perf_counter() - started,
                profiler.last_report.max_hops))
    for soname, n_functions, _filler in _LADDER:
        stem = soname[:-3]  # drop .so
        platform = _PLATFORM_OF.get(stem, LINUX_X86)
        generated = build_table2_library(stem, platform)
        kernel_image = build_kernel_image(platform)
        profiler = Profiler(platform,
                            {generated.image.soname: generated.image},
                            kernel_image)
        started = time.perf_counter()
        profile = profiler.profile_library(generated.image.soname)
        seconds = time.perf_counter() - started
        out.append((soname, len(generated.image.exports),
                    generated.image.code_size(), seconds,
                    profiler.last_report.max_hops))
    return out


def test_profiling_time_scales_with_code_size(benchmark):
    ladder = benchmark.pedantic(_profile_ladder, rounds=1, iterations=1)

    rows = []
    for soname, n_functions, code_bytes, seconds, hops in ladder:
        rows.append(f"{soname:<16} {n_functions:5d} fns  "
                    f"{code_bytes / 1024:8.1f} KB   {seconds:7.3f} s   "
                    f"max hops {hops}")
    rows.append("(paper: libdmx 18 fns/8 KB -> 0.2 s;  "
                "libxml2 1612 fns/897 KB -> 20 s)")
    print_table("§6.2 — profiling time vs library size",
                "library           exports     code        time",
                rows)

    by_size = sorted(ladder, key=lambda r: r[2])
    smallest, largest = by_size[0], by_size[-1]
    if not FAST:
        # two orders of magnitude in code size must cost clearly more
        # time (the fast ladder lacks the spread to assert this)
        assert largest[3] > 3 * smallest[3]
    # the paper's hop observation: "always 3 or less"
    assert all(hops <= 3 for *_rest, hops in ladder)
    # profiling stays interactive (the paper's adoption argument)
    assert largest[3] < 60


def _profile_libc_jobs(jobs):
    from repro.corpus.libc import libc
    built = libc(LINUX_X86)
    profiler = Profiler(LINUX_X86, {built.image.soname: built.image},
                        build_kernel_image(LINUX_X86))
    started = time.perf_counter()
    profile = profiler.profile_all(jobs=jobs)
    return time.perf_counter() - started, profile["libc.so.6"]


def test_parallel_profiling_matches_serial(benchmark):
    """Per-export fan-out must not change profile content."""
    def arms():
        return [(jobs, *_profile_libc_jobs(jobs)) for jobs in (1, 4)]

    results = benchmark.pedantic(arms, rounds=1, iterations=1)
    print_table("§6.2 — per-export parallel profiling",
                "jobs      time",
                [f"{jobs:4d}  {seconds:7.3f} s"
                 for jobs, seconds, _profile in results])
    (_j1, _t1, serial), (_j4, _t4, parallel) = results
    assert parallel.to_xml() == serial.to_xml()
