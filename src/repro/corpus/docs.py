"""Man-page generation for the corpus (§3.1 / §6.3).

Pages are rendered in classic troff-output style (NAME / SYNOPSIS /
RETURN VALUE / ERRORS) from each function's *documented* error set —
which by construction omits phantom codes and includes hidden ones, so
scoring the profiler against these pages reproduces Table 2's
methodology.  A configurable fraction of pages exhibits the paper's
documentation hazards: vague phrasing ("returns 0 if successful, a
positive error code otherwise") and cross references ("The same errors
that occur for X can also occur here").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel.errno import ERRNO_NAMES, strerror
from ..toolchain import minc
from .spec import GeneratedFunction, GeneratedLibrary

_RETURN_TYPE_C = {
    minc.RET_VOID: "void",
    minc.RET_SCALAR: "int",
    minc.RET_POINTER: "void *",
}


def man_page_for(meta: GeneratedFunction, *,
                 library: str = "lib") -> str:
    """Render one function's manual page."""
    params = ", ".join(f"int arg{i}" for i in range(meta.nparams)) or "void"
    rtype = _RETURN_TYPE_C[meta.returns]
    lines: List[str] = [
        "NAME",
        f"    {meta.name} - {library} operation",
        "",
        "SYNOPSIS",
        f"    {rtype} {meta.name}({params});",
        "",
        "RETURN VALUE",
    ]
    documented = meta.visible + meta.hidden
    if meta.vague_doc:
        lines.append("    Returns 0 if successful, a positive error code "
                     "otherwise.")
    elif meta.returns == minc.RET_VOID:
        lines.append(f"    {meta.name}() does not return a value.")
    elif not documented:
        lines.append(f"    {meta.name}() returns the computed value on "
                     "success.")
    else:
        named = [c for c in documented if -c in ERRNO_NAMES]
        plain = [c for c in documented if -c not in ERRNO_NAMES]
        lines.append(f"    On success, {meta.name}() returns a non-negative "
                     "value.")
        for code in plain:
            lines.append(f"    On failure, {code} is returned.")
        if named:
            lines.append("    On error, the corresponding negative errno "
                         "value is returned.")
    lines.append("")
    lines.append("ERRORS")
    if meta.crossref:
        lines.append(f"    The same errors that occur for {meta.crossref} "
                     "can also occur here.")
    errno_codes = [c for c in documented if -c in ERRNO_NAMES]
    if not errno_codes and not meta.crossref:
        lines.append("    No errors are defined.")
    for code in errno_codes:
        name = ERRNO_NAMES[abs(code)]
        lines.append(f"    {name}  {strerror(name)}.")
    return "\n".join(lines)


def manual_for_library(generated: GeneratedLibrary) -> Dict[str, str]:
    """All pages of one generated library, keyed by function name."""
    stem = generated.spec.soname.split(".")[0]
    pages: Dict[str, str] = {}
    previous: Optional[GeneratedFunction] = None
    for meta in generated.functions:
        # exercise the parser's cross-reference handling on pages that
        # contribute no error constants of their own (so the references
        # never change the Table 2 counts); deterministic selection
        if previous is not None \
                and not (meta.visible or meta.hidden or meta.phantom) \
                and not (previous.visible or previous.hidden) \
                and meta.crossref is None \
                and sum(meta.name.encode()) % 17 == 0:
            meta.crossref = previous.name
        pages[meta.name] = man_page_for(meta, library=stem)
        previous = meta
    return pages
