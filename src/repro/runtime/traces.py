"""Superblock trace compiler (the second translation tier).

The block compiler (``blocks.py``) removes per-instruction dispatch but
still bounces through ``Cpu.run()``'s dict lookup between basic blocks,
and pays one Python call per instruction closure.  This module compiles
*superblocks*: once a block's dispatch count crosses
:data:`TRACE_THRESHOLD`, the block is linked with its statically
predicted hot successors into a single generated Python function — data
ops inlined as source lines, loop back-edges closed into a native
``while`` loop — so a hot guest loop runs without leaving one Python
frame.

Exactness is the contract, inherited from ``cpu._run_block``:

* every generated line maps back to ``(cum, addr, is_ctl, block_count)``
  accounting metadata; on a mid-trace fault the runner recovers the
  faulting instruction from the traceback's line number and the
  iteration count from the frame's ``consumed`` local, then restores
  ``eip``/``instructions_executed`` to exactly the state the block (and
  step) path would report;
* operand shapes without a hand-written source template fall back to
  calling the block tier's own bound closure for that instruction, so a
  trace can never change semantics — only remove interpreter overhead;
* per-block budget guards replicate ``run()``'s "never enter a block the
  step budget couldn't finish" rule, and the optional coverage variant
  bumps per-block dispatch counts exactly where ``run()`` would.

Trace *selection* is static and profile-seeded: conditional branches
predict backward-taken / forward-not-taken (the classic loop
heuristic), unconditional direct jumps follow, and calls, returns,
indirect jumps and host transfers terminate the trace.  Templates are
pure constants + binder references, shared cross-process through
:class:`~repro.runtime.codecache.SharedCodeCache` exactly like block
templates.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Tuple

from ..isa import Imm, Mem, Reg
from ..isa.instructions import JCC_TAKEN
from ..layout import HOST_REGION_BASE
from .blocks import BlockTemplate
from .memory import MASK32

__all__ = ["TraceTemplate", "BoundTrace", "build_trace", "TRACE_THRESHOLD",
           "MAX_TRACE_BLOCKS"]

#: Block dispatch count that promotes an entry to the trace tier.
TRACE_THRESHOLD = 16

#: Upper bound on blocks linked into one superblock.
MAX_TRACE_BLOCKS = 8

_M = MASK32
_SIGN = 0x80000000
_WRAP = 0x100000000

#: Branch predicate source over flag expressions {z}/{s}.
_JCC_SRC = {
    "jz": "{z}",
    "jnz": "not {z}",
    "js": "{s}",
    "jns": "not {s}",
    "jl": "{s}",
    "jge": "not {s}",
    "jle": "{s} or {z}",
    "jg": "not {s} and not {z}",
}

_ARITH_OPS = {"add": "+", "sub": "-", "and": "&", "or": "|", "xor": "^"}


# -- source emission for inlinable operand shapes ----------------------------


def _ea_src(op: Mem, abi, tls_base: int) -> str:
    """Source of a memory operand's effective address (mirrors
    ``blocks._ea`` including the folded TLS displacement)."""
    disp = op.disp
    if op.segment == "gs":
        disp += tls_base
    base_i = abi.reg_id(op.base) if op.base else None
    index_i = abi.reg_id(op.index) if op.index else None
    if base_i is None and index_i is None:
        return repr(disp & _M)
    if index_i is None:
        return f"(v[{base_i}] + {disp}) & {_M}"
    return f"(v[{base_i}] + v[{index_i}] * {op.scale} + {disp}) & {_M}"


def _read_src(op, abi, tls_base: int) -> Optional[str]:
    """Source of an unsigned operand read (mirrors ``blocks._read_u``)."""
    if isinstance(op, Reg):
        return f"v[{abi.reg_id(op.name)}]"
    if isinstance(op, Imm):
        return repr(op.value & _M)
    if isinstance(op, Mem):
        return f"read({_ea_src(op, abi, tls_base)})"
    return None


def _flags_src(r: str) -> str:
    return f"cpu.zf = {r} == 0; cpu.sf = {r} >= {_SIGN}"


def _data_src(insn, abi, tls_base: int, addr: int) -> Optional[str]:
    """One-line source for a data instruction, or None to fall back to
    the instruction's bound block closure.  Every template mirrors the
    corresponding ``blocks.py`` binder statement for statement —
    including operand evaluation order, which decides the machine state
    a faulting access leaves behind."""
    m = insn.mnemonic
    ops = insn.operands
    if m == "nop":
        return "pass"
    if m == "mov":
        dst, src = ops
        if isinstance(dst, Reg):
            di = abi.reg_id(dst.name)
            rhs = _read_src(src, abi, tls_base)
            return None if rhs is None else f"v[{di}] = {rhs}"
        if isinstance(dst, Mem):
            ea = _ea_src(dst, abi, tls_base)
            rhs = _read_src(src, abi, tls_base)
            return None if rhs is None else f"write({ea}, {rhs})"
        return None
    if m == "lea":
        dst, src = ops
        if isinstance(dst, Reg) and isinstance(src, Mem):
            return f"v[{abi.reg_id(dst.name)}] = {_ea_src(src, abi, tls_base)}"
        return None
    if m in _ARITH_OPS:
        sym = _ARITH_OPS[m]
        dst, src = ops
        if isinstance(dst, Reg):
            di = abi.reg_id(dst.name)
            rhs = _read_src(src, abi, tls_base)
            if rhs is None:
                return None
            return (f"_r = (v[{di}] {sym} {rhs}) & {_M}; v[{di}] = _r; "
                    + _flags_src("_r"))
        if isinstance(dst, Mem):
            ea = _ea_src(dst, abi, tls_base)
            rhs = _read_src(src, abi, tls_base)
            if rhs is None:
                return None
            # dst read before src read matches the closure's
            # fn(read(addr), b()) argument order
            return (f"_a = {ea}; _r = (read(_a) {sym} {rhs}) & {_M}; "
                    f"write(_a, _r); " + _flags_src("_r"))
        return None
    if m in ("inc", "dec"):
        (dst,) = ops
        sym = "+" if m == "inc" else "-"
        if isinstance(dst, Reg):
            di = abi.reg_id(dst.name)
            return (f"_r = (v[{di}] {sym} 1) & {_M}; v[{di}] = _r; "
                    + _flags_src("_r"))
        return None
    if m == "push":
        (src,) = ops
        spi = abi.reg_id(abi.stack_pointer)
        if isinstance(src, (Reg, Imm)):
            rhs = _read_src(src, abi, tls_base)
            return (f"_sp = (v[{spi}] - 4) & {_M}; v[{spi}] = _sp; "
                    f"write(_sp, {rhs})")
        return None
    if m == "pop":
        (dst,) = ops
        spi = abi.reg_id(abi.stack_pointer)
        if isinstance(dst, Reg):
            di = abi.reg_id(dst.name)
            # value lands after the bump: pop-into-sp wins, like the
            # block closure
            return (f"_sp = v[{spi}]; _val = read(_sp); "
                    f"v[{spi}] = (_sp + 4) & {_M}; v[{di}] = _val")
        return None
    if m == "leave":
        spi = abi.reg_id(abi.stack_pointer)
        fpi = abi.reg_id(abi.frame_pointer)
        return (f"_sp = v[{fpi}]; v[{spi}] = _sp; _val = read(_sp); "
                f"v[{spi}] = (_sp + 4) & {_M}; v[{fpi}] = _val")
    if m == "int":
        (vec,) = ops
        if not isinstance(vec, Imm) or (vec.value & _M) != 0x80:
            return None
        nr_i = abi.reg_id(abi.syscall_number_register)
        args = ", ".join(f"v[{abi.reg_id(r)}]"
                         for r in abi.syscall_arg_registers)
        ret_i = abi.reg_id(abi.return_register)
        # eip parks on the int instruction like the step path; handlers
        # (and a propagating ProcessExit) inspect it
        return (f"cpu.eip = {addr}; v[{ret_i}] = "
                f"dispatch(proc, v[{nr_i}], [{args}]) & {_M}")
    return None


def _signed_src(src: str, temp: str, out: List[str]) -> str:
    """Emit a prefix assignment converting ``src`` to a signed value in
    ``temp`` (folding immediates at compile time)."""
    try:
        const = int(src)
    except ValueError:
        out.append(f"{temp} = {src}")
        return (f"(({temp} - {_WRAP}) if {temp} >= {_SIGN} else {temp})")
    return repr(const - _WRAP if const >= _SIGN else const)


def _fused_src(insn, jcc_m: str, taken: int, not_taken: int,
               abi) -> Optional[str]:
    """Source for a fused ``cmp/test + jcc`` pair (mirrors
    ``blocks._fused_branch``; only non-faulting shapes fuse, so the
    whole line is exception-free)."""
    pred = _JCC_SRC.get(jcc_m)
    if pred is None:
        return None
    a_op, b_op = insn.operands
    if isinstance(a_op, Mem) or isinstance(b_op, Mem):
        return None
    parts: List[str] = []
    if insn.mnemonic == "cmp":
        if isinstance(a_op, Reg) and isinstance(b_op, Imm):
            ai = abi.reg_id(a_op.name)
            parts.append(f"_a = v[{ai}]")
            diff = (f"(((_a - {_WRAP}) if _a >= {_SIGN} else _a) "
                    f"- {b_op.value})")
        else:
            a = _signed_src(_read_src(a_op, abi, 0), "_a", parts)
            b = _signed_src(_read_src(b_op, abi, 0), "_b", parts)
            diff = f"({a} - {b})"
        parts.append(f"_d = {diff}; _z = _d == 0; _s = _d < 0")
    else:
        a = _read_src(a_op, abi, 0)
        b = _read_src(b_op, abi, 0)
        parts.append(f"_r = {a} & {b}; _z = _r == 0; _s = _r >= {_SIGN}")
    cond = pred.format(z="_z", s="_s")
    parts.append("cpu.zf = _z; cpu.sf = _s")
    parts.append(f"cpu.eip = {taken} if {cond} else {not_taken}")
    return "; ".join(parts)


# -- trace selection ---------------------------------------------------------


def _control_info(bt: BlockTemplate, entries: Dict[int, Tuple]):
    """Classify a block's ending transfer.

    Returns ``(kind, data)`` where kind is one of:

    * ``"fall"``   — no control op; data = fallthrough address
    * ``"jmp"``    — unconditional direct jump; data = destination
    * ``"cond"``   — conditional (plain or fused); data =
      ``(src_line, taken, not_taken)``
    * ``"stop"``   — call / ret / hlt / indirect / host-probing jump;
      trace ends after this block (executed via its bound closure)
    """
    if bt.ctl_index < 0:
        return "fall", bt.fallthrough
    ctl_addr = bt.addrs[bt.ctl_index]
    insn, size, target = entries[ctl_addr]
    m = insn.mnemonic
    if m in ("cmp", "test"):
        # a cmp/test in control position is a fused pair; the jcc is
        # the next decoded instruction
        jcc = entries.get(ctl_addr + size)
        if jcc is None:
            return "stop", None
        jinsn, jsize, jtarget = jcc
        if jtarget is None:                    # pragma: no cover - defensive
            return "stop", None
        return "cond", (insn, jinsn.mnemonic, jtarget, ctl_addr + size + jsize)
    if m == "jmp":
        if target is not None and target < HOST_REGION_BASE:
            return "jmp", target
        return "stop", None
    if m in JCC_TAKEN:
        if target is None:
            return "stop", None
        return "cond", (None, m, target, ctl_addr + size)
    return "stop", None


def _predict(taken: int, not_taken: int, branch_addr: int) -> int:
    """Static branch prediction: backward taken (loops), forward not."""
    return taken if taken <= branch_addr else not_taken


class TraceTemplate:
    """One compiled superblock, shareable across processes.

    Holds the constituent :class:`BlockTemplate` chain plus the
    generated source per variant (with/without coverage); code objects
    compile lazily on first bind and are cached (a racing double
    compile is benign — both results are equivalent).
    """

    __slots__ = ("entry", "blocks", "nexts", "looping", "count",
                 "block_entries", "_sources", "_compiled")

    def __init__(self, entry: int, blocks: Tuple[BlockTemplate, ...],
                 nexts: Tuple[Optional[int], ...], looping: bool,
                 sources) -> None:
        self.entry = entry
        self.blocks = blocks
        self.nexts = nexts
        self.looping = looping
        self.count = blocks[0].count       # run()'s budget-guard unit
        self.block_entries = tuple(bt.entry for bt in blocks)
        self._sources = sources            # variant -> (source, linemap)
        self._compiled: Dict[bool, Tuple[Callable, Dict]] = {}

    def factory(self, with_coverage: bool):
        """The compiled ``_factory(rt, fb)`` plus its line map."""
        cached = self._compiled.get(with_coverage)
        if cached is not None:
            return cached
        source, linemap = self._sources[with_coverage]
        namespace: Dict[str, object] = {}
        code = compile(source, f"<trace:{self.entry:#x}"
                               f"{':cov' if with_coverage else ''}>", "exec")
        exec(code, namespace)
        cached = (namespace["_factory"], linemap)
        self._compiled[with_coverage] = cached
        return cached

    def bind(self, rt) -> "BoundTrace":
        """Bind to one CPU's context (fallback closures bind eagerly;
        the generated function compiles lazily per coverage variant)."""
        fallbacks = tuple(tuple(b(rt) for b in bt.binders)
                          for bt in self.blocks)
        return BoundTrace(self, rt, fallbacks)


class BoundTrace:
    """A trace template bound to one CPU."""

    __slots__ = ("template", "count", "entry", "_rt", "_fb",
                 "_fn_plain", "_map_plain", "_fn_cov", "_map_cov")

    #: duck-typed discriminator shared with ``cpu._BoundBlock``
    is_trace = True

    def __init__(self, template: TraceTemplate, rt, fallbacks) -> None:
        self.template = template
        self.count = template.count
        self.entry = template.entry
        self._rt = rt
        self._fb = fallbacks
        self._fn_plain = None
        self._map_plain = None
        self._fn_cov = None
        self._map_cov = None

    def execute(self, cpu, budget: int, coverage) -> int:
        """Run the trace with at most ``budget`` guest instructions.

        Returns the instructions consumed (also added to
        ``cpu.instructions_executed``); exits with ``cpu.eip`` at the
        next dispatch point.  Fault accounting matches
        ``cpu._run_block`` exactly (see :meth:`_account`).
        """
        if coverage is None:
            fn = self._fn_plain
            if fn is None:
                factory, linemap = self.template.factory(False)
                fn = self._fn_plain = factory(self._rt, self._fb)
                self._map_plain = linemap
            linemap = self._map_plain
        else:
            fn = self._fn_cov
            if fn is None:
                factory, linemap = self.template.factory(True)
                fn = self._fn_cov = factory(self._rt, self._fb)
                self._map_cov = linemap
            linemap = self._map_cov
        try:
            consumed = fn(budget, coverage)
        except Exception as exc:
            self._account(cpu, fn, linemap, exc)
            raise
        cpu.instructions_executed += consumed
        return consumed

    def _account(self, cpu, fn, linemap, exc) -> None:
        """Exact fault accounting via the traceback.

        The faulting *line* identifies the static position (its
        ``(cum, addr, is_ctl, block_count)`` metadata); the frame's
        ``consumed`` local counts the completed blocks of prior
        iterations.  Mirrors ``_run_block``: a ``_RunComplete`` counts
        the whole current block, any other exception counts the
        faulting instruction itself and — for data ops — parks ``eip``
        on it.
        """
        from .cpu import _RunComplete
        code = fn.__code__
        tb = exc.__traceback__
        while tb is not None and tb.tb_frame.f_code is not code:
            tb = tb.tb_next
        if tb is None:                         # pragma: no cover - defensive
            return
        consumed = tb.tb_frame.f_locals.get("consumed", 0)
        meta = linemap.get(tb.tb_lineno)
        if meta is None:                       # pragma: no cover - defensive
            cpu.instructions_executed += consumed
            return
        cum, addr, is_ctl, block_count = meta
        if isinstance(exc, _RunComplete):
            cpu.instructions_executed += consumed + block_count
            return
        cpu.instructions_executed += consumed + cum + 1
        if not is_ctl:
            cpu.eip = addr


# -- the trace builder -------------------------------------------------------


def build_trace(entry: int, entries: Dict[int, Tuple], abi, tls_base: int,
                template_of: Callable[[int], Optional[BlockTemplate]],
                ) -> Optional[TraceTemplate]:
    """Select and compile the superblock starting at ``entry``.

    ``template_of`` supplies (and lazily compiles) constituent block
    templates; returns None when the entry has no compilable block.
    """
    blocks: List[BlockTemplate] = []
    nexts: List[Optional[int]] = []
    looping = False
    addr = entry
    seen = set()
    while True:
        bt = template_of(addr)
        if bt is None:
            break
        blocks.append(bt)
        seen.add(addr)
        if len(blocks) >= MAX_TRACE_BLOCKS:
            nexts.append(None)
            break
        kind, data = _control_info(bt, entries)
        if kind == "fall":
            nxt = data
        elif kind == "jmp":
            nxt = data
        elif kind == "cond":
            _insn, jcc_m, taken, not_taken = data
            nxt = _predict(taken, not_taken, bt.addrs[bt.ctl_index])
        else:
            nexts.append(None)
            break
        if nxt == entry:
            nexts.append(nxt)
            looping = True
            break
        if nxt in seen or template_of(nxt) is None:
            nexts.append(nxt)
            break
        nexts.append(nxt)
        addr = nxt
    if not blocks:
        return None
    if len(blocks) == 1 and not looping:
        # a lone non-looping block gains nothing from linking: leave
        # the bound block's closure dispatch in place rather than pay
        # an exec-compile per entry on call-heavy code
        return None
    if len(nexts) < len(blocks):
        nexts.append(None)
    sources = {flag: _generate(entry, blocks, nexts, looping, entries,
                               abi, tls_base, flag)
               for flag in (False, True)}
    return TraceTemplate(entry, tuple(blocks), tuple(nexts), looping,
                         sources)


def _generate(entry: int, blocks: List[BlockTemplate],
              nexts: List[Optional[int]], looping: bool,
              entries: Dict[int, Tuple], abi, tls_base: int,
              with_coverage: bool) -> Tuple[str, Dict[int, Tuple]]:
    """Emit the ``_factory`` source and its line→accounting map."""
    body: List[Tuple[str, Optional[Tuple]]] = []
    fallback_refs: List[str] = []

    def emit(text: str, meta: Optional[Tuple] = None) -> None:
        body.append(("            " + text, meta))

    last = len(blocks) - 1
    for j, bt in enumerate(blocks):
        nxt = nexts[j]
        is_last = j == last
        ctl_addr = bt.addrs[bt.ctl_index] if bt.ctl_index >= 0 else None
        # budget guard: never start a block the step budget couldn't
        # finish — run() then single-steps so faults land exactly
        emit(f"if budget <= {bt.count}: cpu.eip = {bt.entry}; "
             f"return consumed")
        if with_coverage:
            emit(f"cov[{bt.entry}] = cov.get({bt.entry}, 0) + 1")
        kind, data = _control_info(bt, entries)
        for i in range(len(bt.binders)):
            if i == bt.ctl_index:
                continue
            insn, _size, _target = entries[bt.addrs[i]]
            meta = (bt.cum[i], bt.addrs[i], False, bt.count)
            line = _data_src(insn, abi, tls_base, bt.addrs[i])
            if line is None:
                name = f"f{j}_{i}"
                fallback_refs.append(f"{name} = fb[{j}][{i}]")
                line = f"{name}()"
            emit(line, meta)
        # the ending transfer
        ctl_meta = (None if bt.ctl_index < 0 else
                    (bt.cum[bt.ctl_index], ctl_addr, True, bt.count))
        book = f"consumed += {bt.count}; budget -= {bt.count}"
        if kind == "stop":
            name = f"f{j}_{bt.ctl_index}"
            fallback_refs.append(f"{name} = fb[{j}][{bt.ctl_index}]")
            emit(f"{name}()", ctl_meta)
            emit(book)
            emit("return consumed")
        elif kind == "cond":
            insn, jcc_m, taken, not_taken = data
            if insn is not None:
                line = _fused_src(insn, jcc_m, taken, not_taken, abi)
            else:
                pred = _JCC_SRC[jcc_m].format(z="cpu.zf", s="cpu.sf")
                line = f"cpu.eip = {taken} if {pred} else {not_taken}"
            if line is None:                   # pragma: no cover - defensive
                name = f"f{j}_{bt.ctl_index}"
                fallback_refs.append(f"{name} = fb[{j}][{bt.ctl_index}]")
                line = f"{name}()"
            emit(line, ctl_meta)
            emit(book)
            if is_last and looping:
                emit(f"if cpu.eip != {entry}: return consumed")
            elif is_last:
                emit("return consumed")
            else:
                emit(f"if cpu.eip != {nxt}: return consumed")
        elif kind == "jmp":
            emit(book)
            if is_last and not looping:
                emit(f"cpu.eip = {data}; return consumed")
            # in-trace or loop back-edge: eip is dead until the next
            # exit point, where guards / faults / controls set it
        else:  # fall
            emit(book)
            if is_last and not looping:
                emit(f"cpu.eip = {data}; return consumed")

    header = [
        "def _factory(rt, fb):",
        "    cpu = rt.cpu",
        "    v = rt.values",
        "    read = rt.read_u32",
        "    write = rt.write_u32",
        "    proc = rt.proc",
        "    dispatch = proc.kernel.dispatch",
    ]
    header += [f"    {ref}" for ref in dict.fromkeys(fallback_refs)]
    header += [
        "    def trace(budget, cov):",
        "        consumed = 0",
        "        while True:",
    ]
    lines = list(header)
    linemap: Dict[int, Tuple] = {}
    for text, meta in body:
        lines.append(text)
        if meta is not None:
            linemap[len(lines)] = meta
    lines.append("    return trace")
    return "\n".join(lines) + "\n", linemap
