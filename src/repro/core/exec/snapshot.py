"""Common-prefix replay for campaigns: the fork-server case runner.

A systematic campaign runs one monitored test per fault case, and every
case for the same trigger function shares an identical prefix: library
loading, symbol resolution, workload setup, and execution up to the
trigger point.  :class:`SnapshotRunner` executes that prefix **once**
per trigger function under a sentinel plan that can never fire, parks
the guest at workload-ready via
:class:`~repro.runtime.snapshot.MachineSnapshot`, and then replays only
the post-trigger suffix per case.

The differential-equivalence guarantee — replayed cases produce
bit-identical :class:`~repro.core.campaign.CaseResult` outcomes, event
streams and instruction counts versus fresh runs — holds because:

* the prefix plan has the same trigger structure as every case plan
  (one INJECT_NTH trigger on the same function, so interception,
  call counting and evaluation bookkeeping are identical), with an
  ordinal no workload reaches;
* cases whose ordinal falls *inside* the prefix (the trigger would have
  fired during setup) are detected from the checkpointed call counts
  and fall back to a fresh execution;
* per case, the trigger engine, logbook, telemetry instruments and
  injection counters are transplanted to exactly the state a fresh
  controller would have reached at the snapshot point, and the CPU's
  instruction counter resumes from the checkpointed value, so totals
  equal prefix + suffix.

Host-side workload state (the context returned by
``PrefixFactory.setup``) is re-thawed per case by deep-copying the
frozen context with the guest runtime objects (process, memory, CPU,
kernel, controller) pinned as atoms — each case gets fresh Python state
wired to the restored guest.
"""

from __future__ import annotations

import copy
import multiprocessing
import random
import time
from typing import Any, Dict, Iterable, List, Mapping

from ...obs.telemetry import Telemetry, as_telemetry
from ...platform import Platform
from ...runtime.snapshot import MachineSnapshot, SnapshotCache, SnapshotKey
from ..controller import Controller
from ..controller.triggers import (NEVER_ORDINAL, TriggerEngine,
                                   trigger_horizon)
from ..profiles import LibraryProfile
from ..scenario.model import INJECT_NTH, FunctionTrigger, Plan

#: A call ordinal no workload reaches: the prefix runs under a real plan
#: for the trigger function without the trigger ever firing.  Defined as
#: the engine's unreachable-ordinal bound, so the injector's dormant
#: fast path proves the sentinel dead on the first call and the whole
#: prefix executes with zero interception overhead.
PREFIX_SENTINEL = NEVER_ORDINAL


def _in_forked_worker() -> bool:
    parent = getattr(multiprocessing, "parent_process", None)
    return parent is not None and parent() is not None


class _Instance:
    """One live guest parked at the snapshot point."""

    __slots__ = ("controller", "machine", "ctx_frozen", "atoms",
                 "functions", "prefix_calls",
                 "logbook_len", "injection_count", "passthrough_count",
                 "original_cache", "processes_len", "test_counter", "key")


class SnapshotRunner:
    """Runs fault cases by restoring a shared workload checkpoint.

    One runner serves one campaign: the factory, platform and profiles
    are fixed, so checkpoints are grouped by trigger function (the
    *prefix point*).  The instance pool is shared per worker process —
    serial runs use it directly, thread workers check instances in and
    out under a lock, and the process backend builds instances before
    forking (see :meth:`warm`) so children inherit them with an empty
    dirty-page set.
    """

    def __init__(self, app: str, factory, platform: Platform,
                 profiles: Mapping[str, LibraryProfile],
                 *, capture: bool = False, telemetry=None,
                 observe: bool = False) -> None:
        self.app = app
        self.factory = factory
        self.platform = platform
        self.profiles = dict(profiles)
        self.capture = capture
        #: collect classification signals (coverage + output digest);
        #: the prefix controller arms coverage so prefix+suffix counts
        #: equal a fresh run's
        self.observe = observe
        self.telemetry = as_telemetry(telemetry)
        self.cache = SnapshotCache()
        self.workload_id = getattr(factory, "workload_id", None) or app
        self.fallbacks = 0

    @property
    def supported(self) -> bool:
        """Snapshots need the two-phase factory protocol; an opaque
        :data:`~repro.core.campaign.SessionFactory` has nothing to
        checkpoint between setup and suffix."""
        return (callable(getattr(self.factory, "setup", None))
                and callable(getattr(self.factory, "run", None)))

    # -- engine entry points ------------------------------------------------

    def run_case(self, case):
        """Produce one CaseResult, replaying the suffix when possible."""
        from .engine import _case_runner

        if getattr(case, "probability", 0.0) > 0:
            # a probabilistic case rolls its RNG on *every* call,
            # including the prefix's — replaying only the suffix would
            # consume the seed's stream differently from a fresh run,
            # so bit-identical results require running the whole case
            self.fallbacks += 1
            return _case_runner(self.factory, self.platform, self.profiles,
                                case, self.capture, self.observe)
        key = self._key(case.function)
        instance = self.cache.acquire(
            key, lambda: self._build(case.function, case.code))
        if case.call_ordinal <= instance.prefix_calls.get(case.function, 0):
            # the trigger would have fired inside the shared prefix;
            # only a fresh run injects at the right call
            self.cache.release(key, instance)
            self.fallbacks += 1
            return _case_runner(self.factory, self.platform, self.profiles,
                                case, self.capture, self.observe)
        try:
            result = self._replay(instance, case)
        except BaseException:
            # the guest state is suspect (the failure happened outside
            # the monitored region); retire the instance
            instance.machine.detach()
            self.cache.discard(instance)
            raise
        self.cache.release(key, instance)
        return result

    def warm(self, cases: Iterable[Any]) -> None:
        """Build one checkpoint per distinct trigger function (the
        process backend calls this pre-fork so children inherit parked
        guests instead of re-running every prefix)."""
        seen: Dict[str, Any] = {}
        for case in cases:
            if getattr(case, "probability", 0.0) > 0:
                continue        # runs fresh; no checkpoint to warm
            seen.setdefault(case.function, case)
        for function, case in seen.items():
            self.cache.prime(self._key(function),
                             lambda: self._build(function, case.code))

    # -- checkpoint construction --------------------------------------------

    def _key(self, function: str) -> SnapshotKey:
        # the image digest component is only known once a guest exists;
        # within one campaign the images are fixed, so the workload id +
        # prefix point identify the checkpoint (the built instance
        # records the full digest-qualified key for observability)
        return ("campaign", self.workload_id, function)

    def _prefix_plan(self, function: str, code) -> Plan:
        plan = Plan(name=f"snapshot-prefix-{function}")
        plan.add(FunctionTrigger(function=function, mode=INJECT_NTH,
                                 nth=PREFIX_SENTINEL, actions=(code,),
                                 calloriginal=False))
        return plan

    def _build(self, function: str, code) -> _Instance:
        lfi = Controller(self.platform, dict(self.profiles),
                         self._prefix_plan(function, code),
                         coverage=self.observe)
        ctx = self.factory.setup(lfi)
        processes = self._discover_processes(lfi)
        machine = MachineSnapshot.capture(processes)

        instance = _Instance()
        instance.controller = lfi
        instance.machine = machine
        instance.atoms = self._guest_atoms(lfi, processes)
        instance.ctx_frozen = copy.deepcopy(ctx, dict(instance.atoms))
        instance.functions = list(lfi.functions)
        instance.prefix_calls = dict(lfi.engine.call_counts)
        instance.logbook_len = len(lfi.logbook.records)
        instance.injection_count = lfi.injector.injection_count
        instance.passthrough_count = lfi.injector.passthrough_count
        instance.original_cache = {
            pid: dict(table) for pid, table
            in lfi.injector._original_cache.items()}
        instance.processes_len = len(lfi.processes)
        instance.test_counter = lfi._test_counter
        instance.key = (machine.image_digest, self.workload_id, function)
        self._note_taken(instance, function)
        return instance

    @staticmethod
    def _discover_processes(lfi: Controller) -> List[Any]:
        """Every process on every kernel the workload touched —
        including driver processes created without the controller."""
        kernels: List[Any] = []
        seen: set = set()
        for proc in lfi.processes:
            if id(proc.kernel) not in seen:
                seen.add(id(proc.kernel))
                kernels.append(proc.kernel)
        return [proc for kernel in kernels for proc in kernel.processes]

    @staticmethod
    def _guest_atoms(lfi: Controller, processes: List[Any]) -> Dict[int, Any]:
        """Deepcopy memo entries pinning guest runtime objects: the
        frozen workload context references them live, and each case's
        thawed copy must too (restore rewinds them in place)."""
        atoms: Dict[int, Any] = {}
        for obj in (lfi, lfi.injector, lfi.logbook, lfi.platform):
            atoms[id(obj)] = obj
        for proc in processes:
            for obj in (proc, proc.cpu, proc.cpu.regs, proc.memory,
                        proc.kstate, proc.kernel, proc.kernel.vfs,
                        proc.kernel.sockets):
                atoms[id(obj)] = obj
            for module in proc.modules:
                atoms[id(module)] = module
                atoms[id(module.image)] = module.image
        return atoms

    def _note_taken(self, instance: _Instance, function: str) -> None:
        # builds inside forked pool children would record into the
        # child's dead copy of the parent telemetry; skip there
        if not self.telemetry.enabled or _in_forked_worker():
            return
        self.telemetry.metrics.counter(
            "repro_snapshots_taken_total",
            "Workload checkpoints captured for campaign replay",
            ("workload",)).inc(workload=self.workload_id)
        self.telemetry.events.emit(
            "snapshot", action="taken", workload=self.workload_id,
            group=function, bytes=instance.machine.resident_bytes,
            processes=len(instance.machine.procs),
            prefix_calls=instance.prefix_calls.get(function, 0))

    # -- replay -------------------------------------------------------------

    def _replay(self, instance: _Instance, case):
        from .engine import _worker_label
        from ..campaign import CaseResult

        started = time.perf_counter()
        stats = instance.machine.restore()
        restore_seconds = time.perf_counter() - started

        lfi = instance.controller
        case_telemetry = None
        case_events = None
        if self.capture:
            from ...obs.events import BufferedEventLog
            from ...obs.metrics import BufferedMetricsRegistry
            from ...obs.tracing import NULL_TRACER
            case_events = BufferedEventLog()
            case_telemetry = Telemetry(events=case_events,
                                       metrics=BufferedMetricsRegistry(),
                                       tracer=NULL_TRACER)
        plan = case.plan()
        if plan.functions() != instance.functions:
            raise RuntimeError(
                f"case {case.case_id()} does not match checkpoint group "
                f"{instance.functions}")
        lfi.telemetry = as_telemetry(case_telemetry)
        lfi.plan = plan
        lfi.functions = plan.functions()
        engine = TriggerEngine(plan, random.Random(plan.seed))
        engine.call_counts = dict(instance.prefix_calls)
        # A fresh run evaluates the case's triggers on every prefix call
        # until their horizons pass (the injector's dormant fast path
        # then skips evaluation); the sentinel prefix run itself
        # evaluated nothing, so reproduce the fresh run's bookkeeping
        # from the checkpointed call counts.
        prefix_evals: Dict[str, int] = {}
        for function, triggers in engine._by_function.items():
            calls = instance.prefix_calls.get(function, 0)
            live_calls = 0
            for _index, trigger in triggers:
                horizon = trigger_horizon(trigger)
                if horizon is None:
                    live_calls = calls
                    break
                if horizon < NEVER_ORDINAL:
                    live_calls = max(live_calls, min(calls, horizon))
            if live_calls:
                prefix_evals[function] = live_calls * len(triggers)
        engine.evaluations = sum(prefix_evals.values())
        lfi.engine = engine
        injector = lfi.injector
        injector.rebind(engine, lfi.functions, case_telemetry)
        injector.injection_count = instance.injection_count
        injector.passthrough_count = instance.passthrough_count
        injector._original_cache = {
            pid: dict(table) for pid, table
            in instance.original_cache.items()}
        del lfi.logbook.records[instance.logbook_len:]
        del lfi.processes[instance.processes_len:]
        lfi._test_counter = instance.test_counter
        if prefix_evals and lfi.telemetry.enabled:
            # a fresh run records the prefix's trigger evaluations under
            # the case telemetry; pre-seed them so metric snapshots match
            for function, evals in prefix_evals.items():
                injector._evaluations_metric.inc(evals, function=function)

        ctx = copy.deepcopy(instance.ctx_frozen, dict(instance.atoms))
        before = injector.injection_count
        outcome = lfi.run_test(lambda: self.factory.run(lfi, ctx),
                               test_id=case.case_id())
        from ..campaign import injection_sites
        result = CaseResult(case=case, outcome=outcome,
                            fired=injector.injection_count - before > 0,
                            instructions=lfi.instructions_executed,
                            sites=injection_sites(
                                lfi.logbook.for_test(case.case_id())))
        if self.capture:
            result.events = case_events.drain_dicts()
            result.metrics = case_telemetry.metrics.snapshot()
            result.worker = _worker_label()
        if self.observe:
            from .engine import _observe_result
            _observe_result(result, lfi)
        result.snapshot = {
            "group": case.function,
            "workload": self.workload_id,
            "dirty_pages": stats.dirty_pages,
            "bytes": stats.bytes_restored,
            "seconds": restore_seconds,
        }
        return result
