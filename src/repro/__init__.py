"""repro — a full reproduction of *LFI: A Practical and General
Library-Level Fault Injector* (Marinescu & Candea, DSN 2009) on a
synthetic binary ecosystem.

Public API tour::

    from repro import (
        LINUX_X86, Kernel, Process,            # platform + runtime
        libc, build_kernel_image,              # corpus
        Profiler, Controller,                  # the paper's two halves
        random_plan, exhaustive_plan,          # §4 scenario generation
    )

    built = libc(LINUX_X86)
    profiler = Profiler(LINUX_X86, {built.image.soname: built.image},
                        build_kernel_image(LINUX_X86))
    profiles = profiler.profile_all()
    plan = random_plan(profiles, probability=0.1, seed=42)
    lfi = Controller(LINUX_X86, profiles, plan)
    proc = lfi.make_process(Kernel(), [built.image])
    proc.libcall("open", proc.cstr("/x"), 0, 0)   # may now fail, by design

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from .core.controller import Controller, TestOutcome, TestReport
from .core.profiler import HeuristicConfig, Profiler, profile_application
from .core.profiles import LibraryProfile
from .core.scenario import (Plan, exhaustive_plan, plan_from_xml,
                            plan_to_xml, random_plan)
from .corpus import build_libc, libc
from .kernel import Kernel, build_kernel_image
from .platform import (ALL_PLATFORMS, LINUX_X86, SOLARIS_SPARC, WINDOWS_X86,
                       Platform, platform_by_name)
from .runtime import Process

__version__ = "1.0.0"

__all__ = [
    "Profiler", "profile_application", "HeuristicConfig", "LibraryProfile",
    "Controller", "TestOutcome", "TestReport",
    "Plan", "random_plan", "exhaustive_plan", "plan_to_xml", "plan_from_xml",
    "Kernel", "Process", "build_kernel_image",
    "libc", "build_libc",
    "Platform", "LINUX_X86", "WINDOWS_X86", "SOLARIS_SPARC",
    "ALL_PLATFORMS", "platform_by_name",
    "__version__",
]
