"""The runtime kernel: syscall dispatch over VFS, pipes and sockets.

Guest code reaches this through ``int 0x80`` (see ``runtime.cpu``); the
libc wrappers compiled by the toolchain pass arguments in the ABI's
syscall registers.  Handlers may only fail with errno values declared in
:mod:`repro.kernel.syscalls` — an assertion enforces that the *runtime*
kernel and the *statically analyzable kernel image* (``kernel.image``)
agree, which is the property §3.1's kernel analysis depends on.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import KernelError
from ..layout import HEAP_BASE, HEAP_LIMIT
from .errno import errno_number
from .pipes import Pipe, PipeError
from .sockets import Endpoint, Socket, SocketError, SocketTable
from .syscalls import SYSCALL_BY_NR, spec
from .vfs import O_APPEND, Vfs, VfsError


def _sgn(value: int) -> int:
    """Reinterpret a raw 32-bit syscall argument as signed."""
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


class ProcessExit(Exception):
    """Raised by the exit syscall to unwind the VM."""

    def __init__(self, status: int) -> None:
        super().__init__(f"exit({status})")
        self.status = status


@dataclass
class FileDesc:
    """One file-descriptor table entry."""

    kind: str                       # file | dir | pipe_r | pipe_w | socket
    vnode: object = None
    pos: int = 0
    flags: int = 0
    pipe: Optional[Pipe] = None
    socket: Optional[Socket] = None
    endpoint: Optional[Endpoint] = None
    dir_entries: Optional[List[str]] = None
    #: the path the descriptor was opened with, for path-scoped fault
    #: triggers; None for pipes and sockets
    path: Optional[str] = None


@dataclass
class KProcState:
    """Per-process kernel-side state, owned by the runtime Process."""

    pid: int
    fds: Dict[int, FileDesc] = field(default_factory=dict)
    next_fd: int = 3
    heap_next: int = HEAP_BASE
    heap_used: int = 0
    allocs: Dict[int, int] = field(default_factory=dict)

    def alloc_fd(self, entry: FileDesc, limit: int) -> int:
        if len(self.fds) >= limit:
            raise VfsError("EMFILE")
        fd = self.next_fd
        self.next_fd += 1
        self.fds[fd] = entry
        return fd


class Kernel:
    """A shared kernel instance; multiple processes may attach."""

    def __init__(self, *, os_name: str = "Linux",
                 disk_capacity: int = 1 << 24,
                 max_fds: int = 256,
                 mem_limit: int = HEAP_LIMIT - HEAP_BASE,
                 pipe_capacity: int = 4096) -> None:
        self.os_name = os_name
        self.vfs = Vfs(capacity=disk_capacity)
        self.sockets = SocketTable()
        self.max_fds = max_fds
        self.mem_limit = mem_limit
        self.pipe_capacity = pipe_capacity
        self.clock_ns = 0
        self._next_pid = 1
        self.syscall_count = 0
        #: every runtime Process attached to this kernel, in creation
        #: order — the snapshot engine discovers guest processes here
        #: (workload drivers may create processes without a controller)
        self.processes: List[object] = []

    def new_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    # -- snapshot support -------------------------------------------------

    def clone(self, memo: Optional[dict] = None) -> Dict[str, object]:
        """Freeze the kernel's mutable state for a later :meth:`restore`.

        ``memo`` is a shared ``deepcopy`` memo: cloning the per-process
        fd tables (:class:`KProcState`) with the same memo keeps open
        descriptors pointing into the cloned VFS tree / pipe / socket
        objects, exactly mirroring the live aliasing.
        """
        memo = {} if memo is None else memo
        return {
            "vfs": self.vfs.clone(memo),
            "sockets": copy.deepcopy(self.sockets, memo),
            "clock_ns": self.clock_ns,
            "next_pid": self._next_pid,
            "syscall_count": self.syscall_count,
            "processes": len(self.processes),
        }

    def restore(self, frozen: Dict[str, object],
                memo: Optional[dict] = None) -> None:
        """Reset to a :meth:`clone`'s state, in place and in O(state
        touched): the ``vfs``/``sockets`` objects keep their identity
        (processes and fd entries reference them), their contents are
        re-thawed from the frozen copies."""
        memo = {} if memo is None else memo
        self.vfs.restore(frozen["vfs"], memo)
        sockets = copy.deepcopy(frozen["sockets"], memo)
        self.sockets.listeners = sockets.listeners
        self.clock_ns = frozen["clock_ns"]
        self._next_pid = frozen["next_pid"]
        self.syscall_count = frozen["syscall_count"]
        del self.processes[frozen["processes"]:]

    # -- dispatch --------------------------------------------------------

    def dispatch(self, proc, nr: int, arg_values: List[int]) -> int:
        """Execute syscall ``nr``; returns >= 0 or a negative errno."""
        self.syscall_count += 1
        sc = SYSCALL_BY_NR.get(nr)
        if sc is None:
            return -errno_number("ENOSYS")
        handler = getattr(self, f"sys_{sc.name}", None)
        if handler is None:
            raise KernelError(f"syscall {sc.name} has no runtime handler")
        args = list(arg_values[:sc.nargs])
        args += [0] * (sc.nargs - len(args))
        try:
            result = handler(proc, *args)
        except VfsError as exc:
            return self._fail(sc.name, exc.errno_name)
        except PipeError as exc:
            return self._fail(sc.name, exc.errno_name)
        except SocketError as exc:
            return self._fail(sc.name, exc.errno_name)
        return result

    def _fail(self, syscall_name: str, errno_name: str) -> int:
        declared = spec(syscall_name).errors_for(self.os_name)
        if errno_name not in declared:
            raise KernelError(
                f"{syscall_name} produced undeclared error {errno_name} "
                f"(declared: {declared})")
        return -errno_number(errno_name)

    @staticmethod
    def _fd(proc, fd: int) -> FileDesc:
        entry = proc.kstate.fds.get(fd)
        if entry is None:
            raise VfsError("EBADF")
        return entry

    @staticmethod
    def _check_buf(addr: int, count: int) -> None:
        if addr == 0 and count > 0:
            raise VfsError("EFAULT")

    # -- file syscalls -----------------------------------------------------

    def sys_open(self, proc, path_ptr: int, flags: int, mode: int) -> int:
        self._check_buf(path_ptr, 1)
        path = proc.read_cstr(path_ptr)
        node = self.vfs.open_node(path, flags)
        kind = "dir" if node.is_dir else "file"
        entry = FileDesc(kind=kind, vnode=node, flags=flags, path=path)
        if flags & O_APPEND and not node.is_dir:
            entry.pos = node.size()
        return proc.kstate.alloc_fd(entry, self.max_fds)

    def sys_close(self, proc, fd: int) -> int:
        entry = self._fd(proc, fd)
        del proc.kstate.fds[fd]
        if entry.kind == "pipe_r" and entry.pipe:
            entry.pipe.close_read()
        elif entry.kind == "pipe_w" and entry.pipe:
            entry.pipe.close_write()
        elif entry.kind == "socket":
            if entry.socket is not None:
                self.sockets.close(entry.socket)
            elif entry.endpoint is not None:
                entry.endpoint.close()
        return 0

    def sys_read(self, proc, fd: int, buf: int, count: int) -> int:
        self._check_buf(buf, count)
        entry = self._fd(proc, fd)
        if entry.kind == "dir":
            raise VfsError("EISDIR")
        if entry.kind == "file":
            data = self.vfs.read_at(entry.vnode, entry.pos, count)
            entry.pos += len(data)
        elif entry.kind == "pipe_r":
            data = entry.pipe.read(count)
        elif entry.kind == "pipe_w":
            raise VfsError("EBADF")
        elif entry.kind == "socket":
            data = self._endpoint_of(entry).recv(count)
        else:
            raise VfsError("EBADF")
        proc.mem_write(buf, data)
        return len(data)

    def sys_write(self, proc, fd: int, buf: int, count: int) -> int:
        self._check_buf(buf, count)
        entry = self._fd(proc, fd)
        data = proc.mem_read(buf, count)
        if entry.kind == "file":
            written = self.vfs.write_at(entry.vnode, entry.pos, data)
            entry.pos += written
            return written
        if entry.kind == "pipe_w":
            return entry.pipe.write(data)
        if entry.kind == "pipe_r":
            raise VfsError("EBADF")
        if entry.kind == "socket":
            return self._endpoint_of(entry).send(data)
        raise VfsError("EISDIR" if entry.kind == "dir" else "EBADF")

    def sys_lseek(self, proc, fd: int, offset: int, whence: int) -> int:
        offset = _sgn(offset)
        entry = self._fd(proc, fd)
        if entry.kind != "file":
            raise VfsError("ESPIPE" if entry.kind.startswith(("pipe", "sock"))
                           else "EINVAL")
        size = entry.vnode.size()
        new = {0: offset, 1: entry.pos + offset, 2: size + offset}.get(whence)
        if new is None or new < 0:
            raise VfsError("EINVAL")
        entry.pos = new
        return new

    def sys_unlink(self, proc, path_ptr: int) -> int:
        self.vfs.unlink(proc.read_cstr(path_ptr))
        return 0

    def sys_link(self, proc, old_ptr: int, new_ptr: int) -> int:
        self._check_buf(old_ptr, 1)
        self._check_buf(new_ptr, 1)
        self.vfs.link(proc.read_cstr(old_ptr), proc.read_cstr(new_ptr))
        return 0

    def sys_rename(self, proc, old_ptr: int, new_ptr: int) -> int:
        self._check_buf(old_ptr, 1)
        self._check_buf(new_ptr, 1)
        self.vfs.rename(proc.read_cstr(old_ptr), proc.read_cstr(new_ptr))
        return 0

    def sys_access(self, proc, path_ptr: int, mode: int) -> int:
        self._check_buf(path_ptr, 1)
        self.vfs.access(proc.read_cstr(path_ptr))
        return 0

    def sys_mkdir(self, proc, path_ptr: int, mode: int) -> int:
        self.vfs.mkdir(proc.read_cstr(path_ptr))
        return 0

    def sys_rmdir(self, proc, path_ptr: int) -> int:
        self.vfs.rmdir(proc.read_cstr(path_ptr))
        return 0

    def sys_stat(self, proc, path_ptr: int, buf: int) -> int:
        self._check_buf(buf, 8)
        size, is_dir = self.vfs.stat(proc.read_cstr(path_ptr))
        proc.mem_write_u32(buf, size)
        proc.mem_write_u32(buf + 4, is_dir)
        return 0

    def sys_dup(self, proc, fd: int) -> int:
        entry = self._fd(proc, fd)
        return proc.kstate.alloc_fd(entry, self.max_fds)

    def sys_fsync(self, proc, fd: int) -> int:
        entry = self._fd(proc, fd)
        if entry.kind != "file":
            raise VfsError("EINVAL")
        return 0

    def sys_ftruncate(self, proc, fd: int, length: int) -> int:
        length = _sgn(length)
        entry = self._fd(proc, fd)
        if entry.kind != "file" or length < 0:
            raise VfsError("EINVAL")
        node = entry.vnode
        if length < node.size():
            self.vfs.used -= node.size() - length
            del node.data[length:]
        else:
            self.vfs.write_at(node, node.size(),
                              b"\x00" * (length - node.size()))
        return 0

    def sys_getdents(self, proc, fd: int, buf: int, count: int) -> int:
        """Simplified dirent protocol: one NUL-terminated name per call."""
        self._check_buf(buf, count)
        entry = self._fd(proc, fd)
        if entry.kind != "dir":
            raise VfsError("ENOTDIR")
        if entry.dir_entries is None:
            entry.dir_entries = self.vfs.listdir(entry.vnode)
        if entry.pos >= len(entry.dir_entries):
            return 0
        name = entry.dir_entries[entry.pos].encode() + b"\x00"
        if len(name) > count:
            raise VfsError("EFAULT")
        entry.pos += 1
        proc.mem_write(buf, name)
        return len(name)

    # -- pipes / memory / process ------------------------------------------

    def sys_pipe(self, proc, fds_ptr: int) -> int:
        self._check_buf(fds_ptr, 8)
        pipe = Pipe(capacity=self.pipe_capacity)
        rfd = proc.kstate.alloc_fd(FileDesc(kind="pipe_r", pipe=pipe),
                                   self.max_fds)
        wfd = proc.kstate.alloc_fd(FileDesc(kind="pipe_w", pipe=pipe),
                                   self.max_fds)
        proc.mem_write_u32(fds_ptr, rfd)
        proc.mem_write_u32(fds_ptr + 4, wfd)
        return 0

    def sys_brk(self, proc, increment: int) -> int:
        return self.sys_mmap(proc, 0, increment)

    def sys_mmap(self, proc, addr_hint: int, size: int) -> int:
        size = _sgn(size)
        if size <= 0:
            raise VfsError("EINVAL")
        size = (size + 0xF) & ~0xF
        ks = proc.kstate
        if ks.heap_used + size > self.mem_limit \
                or ks.heap_next + size > HEAP_LIMIT:
            return -errno_number("ENOMEM")
        addr = ks.heap_next
        ks.heap_next += size
        ks.heap_used += size
        ks.allocs[addr] = size
        proc.memory.map_region(addr, size)
        return addr

    def sys_munmap(self, proc, addr: int, size: int) -> int:
        ks = proc.kstate
        size = _sgn(size)
        if size == 0:
            # libc free() path: the kernel knows the allocation's size
            size = ks.allocs.pop(addr, 0)
            if size == 0:
                raise VfsError("EINVAL")
        elif size < 0:
            raise VfsError("EINVAL")
        else:
            ks.allocs.pop(addr, None)
        ks.heap_used = max(0, ks.heap_used - size)
        return 0

    def sys_getpid(self, proc) -> int:
        return proc.kstate.pid

    def sys_kill(self, proc, pid: int, sig: int) -> int:
        if sig < 0 or sig > 64:
            raise VfsError("EINVAL")
        # only self-signalling is modelled
        if pid != proc.kstate.pid:
            return -errno_number("ESRCH")
        raise ProcessExit(-sig)

    def sys_exit(self, proc, status: int) -> int:
        raise ProcessExit(_sgn(status))

    def sys_fork(self, proc) -> int:
        # Guest-level fork is not modelled; apps spawn sibling processes
        # at the host level (see apps.minipidgin).
        return -errno_number("EAGAIN")

    def sys_nanosleep(self, proc, ns: int, rem: int) -> int:
        ns = _sgn(ns)
        if ns < 0:
            raise VfsError("EINVAL")
        self.clock_ns += ns
        return 0

    def sys_modify_ldt(self, proc, func: int, ptr: int, count: int) -> int:
        return -errno_number("ENOSYS")

    # -- sockets -----------------------------------------------------------

    def sys_socket(self, proc, domain: int, type_: int, proto: int) -> int:
        if domain < 0 or type_ < 0:
            raise VfsError("EINVAL")
        entry = FileDesc(kind="socket", socket=Socket())
        return proc.kstate.alloc_fd(entry, self.max_fds)

    def _socket_of(self, proc, fd: int) -> FileDesc:
        entry = self._fd(proc, fd)
        if entry.kind != "socket":
            raise SocketError("ENOTSOCK")
        return entry

    def _endpoint_of(self, entry: FileDesc) -> Endpoint:
        if entry.endpoint is not None:
            return entry.endpoint
        if entry.socket is not None and entry.socket.endpoint is not None:
            return entry.socket.endpoint
        raise SocketError("ENOTCONN")

    def sys_bind(self, proc, fd: int, port: int, _len: int) -> int:
        entry = self._socket_of(proc, fd)
        self.sockets.bind(entry.socket, port)
        return 0

    def sys_listen(self, proc, fd: int, backlog: int) -> int:
        entry = self._socket_of(proc, fd)
        entry.socket.backlog_limit = max(1, backlog)
        self.sockets.listen(entry.socket)
        return 0

    def sys_accept(self, proc, fd: int, _addr: int, _len: int) -> int:
        entry = self._socket_of(proc, fd)
        endpoint = self.sockets.accept(entry.socket)
        new = FileDesc(kind="socket", endpoint=endpoint)
        return proc.kstate.alloc_fd(new, self.max_fds)

    def sys_connect(self, proc, fd: int, port: int, _len: int) -> int:
        entry = self._socket_of(proc, fd)
        self.sockets.connect(entry.socket, port)
        entry.endpoint = entry.socket.endpoint
        return 0

    def sys_send(self, proc, fd: int, buf: int, count: int,
                 _flags: int) -> int:
        self._check_buf(buf, count)
        entry = self._socket_of(proc, fd)
        data = proc.mem_read(buf, count)
        return self._endpoint_of(entry).send(data)

    def sys_recv(self, proc, fd: int, buf: int, count: int,
                 _flags: int) -> int:
        self._check_buf(buf, count)
        entry = self._socket_of(proc, fd)
        data = self._endpoint_of(entry).recv(count)
        proc.mem_write(buf, data)
        return len(data)
