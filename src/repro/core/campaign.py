"""Systematic per-fault campaigns: one test case per (function, fault).

§5's workflow: "the LFI controller invokes a developer-provided script
that starts the program under test, exercises it with the desired
workload, and monitors its behavior ... This information is collected in
a log, along with an LFI-generated replay script for each fault
injection test case."

Where random scenarios sample the fault space, a *systematic campaign*
enumerates it: for every profiled function and every one of its error
codes, run the workload with exactly that one fault injected on the
function's n-th call.  The result is a fault-tolerance matrix of the
application ("how does it cope when the k-th close() returns EIO?") and
a replay script per cell — precisely the artifacts §6.1 suggests folding
into regression suites.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from ..platform import Platform
from .controller import (REPORT_SCHEMA, STATUS_HUNG, Controller, TestOutcome)
from .profiles import LibraryProfile
from .scenario.generate import derive_plan_seed, error_codes_from_profile
from .scenario.model import (INJECT_NTH, INJECT_RANDOM, Action, DelayFault,
                             ErrorCode, FunctionTrigger, PartialWriteFault,
                             Plan, ShortReadFault)

#: functions whose 3rd argument is a transfer count readable by
#: short-read faults (the simulated corpus' read-side calls)
READ_LIKE = frozenset({"read", "recv", "apr_socket_recv", "apr_file_read"})

#: same, write-side — eligible for partial-write faults
WRITE_LIKE = frozenset({"write", "send", "apr_brigade_write"})

#: the fault classes :func:`enumerate_cases` can expand
FAULT_CLASSES = ("return", "delay", "short-read", "partial-write")

#: A session factory: receives the per-case controller, returns the
#: workload callable to run under monitoring.
SessionFactory = Callable[[Controller], Callable[[], Optional[int]]]


@dataclass
class PrefixFactory:
    """A workload split into a shared setup prefix and a per-case suffix.

    ``setup`` builds the program under test (load libraries, open the
    database, seed state, ...) and returns an opaque workload context;
    ``run`` drives the monitored suffix against that context.  Campaigns
    with snapshots enabled execute ``setup`` once per trigger function,
    checkpoint the guest at workload-ready, and replay only ``run`` per
    fault case — with outcomes bit-identical to fresh runs.

    A ``PrefixFactory`` is also a plain :data:`SessionFactory`: calling
    it with a controller returns a closure running setup + suffix, which
    is exactly what snapshot-disabled (and fallback) cases execute.
    """

    setup: Callable[[Controller], Any]
    run: Callable[[Controller, Any], Optional[int]]
    #: stable workload identity, part of the snapshot cache key
    workload_id: str = "workload"

    def __call__(self, lfi: Controller) -> Callable[[], Optional[int]]:
        def session() -> Optional[int]:
            return self.run(lfi, self.setup(lfi))
        return session


@dataclass(frozen=True)
class FaultCase:
    """One cell of the campaign matrix.

    ``code`` keeps its historical name but accepts any fault action
    (return, delay, short-read, partial-write).  ``probability > 0``
    turns the cell probabilistic: its plan rolls the recorded-seed RNG
    on every call instead of firing at an exact ordinal, which is how
    fail-rate campaigns stay bit-identical under ``--resume``.
    """

    function: str
    code: Action
    call_ordinal: int = 1
    probability: float = 0.0
    seed: Optional[int] = None

    def case_id(self) -> str:
        base = (f"{self.function}@{self.call_ordinal}"
                f"={self.code.describe()}")
        if self.probability > 0:
            base += f"~p{self.probability}"
        return base

    def effective_seed(self) -> Optional[int]:
        """The RNG seed a probabilistic case records into its plan."""
        if self.probability <= 0:
            return None
        if self.seed is not None:
            return self.seed
        return derive_plan_seed(f"case-{self.case_id()}",
                                self.probability, (self.function,),
                                (self.code,))

    def plan(self) -> Plan:
        plan = Plan(name=f"case-{self.case_id()}",
                    seed=self.effective_seed())
        if self.probability > 0:
            plan.add(FunctionTrigger(
                function=self.function, mode=INJECT_RANDOM,
                probability=self.probability, actions=(self.code,),
                calloriginal=False))
        else:
            plan.add(FunctionTrigger(
                function=self.function, mode=INJECT_NTH,
                nth=self.call_ordinal, actions=(self.code,),
                calloriginal=False))
        return plan


@dataclass
class CaseResult:
    """Outcome of one fault case."""

    case: FaultCase
    outcome: TestOutcome
    fired: bool          # the workload actually reached the injection
    seconds: float = 0.0  # wall time of this case (filled by the engine)
    #: Worker-side telemetry, captured when a telemetry context is
    #: attached: serialized events, a metrics snapshot, and the worker
    #: that ran the case.  Plain dicts/strings so they cross the
    #: process-backend pickle boundary.
    events: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    worker: str = ""
    #: guest instructions this case executed (deterministic per case —
    #: identical across backends and interpreter paths)
    instructions: int = 0
    #: replay bookkeeping when the case ran from a workload checkpoint:
    #: group, dirty pages, bytes and restore seconds (None = fresh run)
    snapshot: Optional[Dict[str, Any]] = None
    #: the case's logbook injection sites as plain dicts (see
    #: :func:`injection_sites`) — the stack-hash currency failure
    #: triage buckets by; crosses the process-backend pickle boundary
    sites: List[Dict[str, Any]] = field(default_factory=list)
    #: the five-way failure-mode class (see ``core.results.matrix``),
    #: assigned deterministically by the campaign *parent* when a
    #: result store is attached; None = unclassified
    outcome_class: Optional[str] = None
    #: guest-filesystem content digest at end of case — compared against
    #: the campaign's no-fault golden digest to detect silent corruption
    output: Optional[str] = None
    #: exported block-coverage summary (``runtime.blocks
    #: .export_coverage``): digest, block/dispatch counts, hex-addr map
    coverage: Optional[Dict[str, Any]] = None

    @property
    def tolerated(self) -> bool:
        return self.fired and not self.outcome.crashed \
            and self.outcome.status != "hung"

    def to_dict(self) -> Dict[str, Any]:
        code = self.case.code
        return {
            "case": self.case.case_id(),
            "function": self.case.function,
            "retval": getattr(code, "retval", None),
            "errno": getattr(code, "errno", None),
            "call_ordinal": self.case.call_ordinal,
            "outcome": self.outcome.status,
            "fired": self.fired,
            "tolerated": self.tolerated,
            "duration": round(self.seconds, 6),
            "worker": self.worker,
            "instructions": self.instructions,
            **({"action": code.token()}
               if not isinstance(code, ErrorCode) else {}),
            **({"probability": self.case.probability,
                "seed": self.case.effective_seed()}
               if self.case.probability > 0 else {}),
            **({"snapshot": self.snapshot}
               if self.snapshot is not None else {}),
            **({"class": self.outcome_class}
               if self.outcome_class is not None else {}),
            **({"output": self.output}
               if self.output is not None else {}),
            **({"coverage": {"digest": self.coverage.get("digest", ""),
                             "blocks": self.coverage.get("blocks", 0)}}
               if self.coverage else {}),
        }


def injection_sites(records) -> List[Dict[str, Any]]:
    """Serialize logbook :class:`InjectionRecord` rows for a result.

    Plain JSON-able dicts: they ride on :attr:`CaseResult.sites` across
    the process backend and into the durable result journal, where
    triage hashes the stack frames into bucket keys.
    """
    return [{
        "sequence": r.sequence,
        "test": r.test_id,
        "function": r.function,
        "call": r.call_number,
        "retval": r.retval,
        "errno": r.errno,
        "calloriginal": r.calloriginal,
        "modifications": list(r.modifications),
        "stack": list(r.stacktrace),
        **({"action": r.action} if r.action else {}),
    } for r in records]


@dataclass
class CampaignReport:
    """The complete fault-tolerance matrix."""

    app: str
    results: List[CaseResult] = field(default_factory=list)
    duration: float = 0.0           # wall-clock seconds of the whole run
    summary: Any = None             # RunSummary when run via core.exec
    #: set when a result journal was attached: how many cases the
    #: journal satisfied vs. how many actually (re-)ran
    resumed: Optional[Dict[str, int]] = None

    def fired(self) -> List[CaseResult]:
        return [r for r in self.results if r.fired]

    def crashes(self) -> List[CaseResult]:
        return [r for r in self.results if r.fired and r.outcome.crashed]

    def hung(self) -> List[CaseResult]:
        return [r for r in self.results
                if r.outcome.status == STATUS_HUNG]

    def not_reached(self) -> List[CaseResult]:
        return [r for r in self.results if not r.fired]

    def outcome(self) -> str:
        if any(r.outcome.crashed for r in self.results):
            return "crashes"
        if self.hung():
            return "hung"
        return "ok"

    def classes(self) -> Dict[str, int]:
        """Fired-case counts by failure-mode class (only populated when
        the engine classified — i.e. a result store was attached)."""
        counts: Dict[str, int] = {}
        for r in self.results:
            if r.fired and r.outcome_class:
                counts[r.outcome_class] = counts.get(r.outcome_class, 0) + 1
        return counts

    @property
    def tolerance_rate(self) -> float:
        fired = self.fired()
        if not fired:
            return 1.0
        return sum(1 for r in fired if r.tolerated) / len(fired)

    def by_function(self) -> Dict[str, List[CaseResult]]:
        table: Dict[str, List[CaseResult]] = {}
        for result in self.results:
            table.setdefault(result.case.function, []).append(result)
        return table

    def render(self) -> str:
        lines = [f"systematic campaign for {self.app}: "
                 f"{len(self.results)} cases, {len(self.fired())} fired, "
                 f"{len(self.crashes())} crashes, "
                 f"tolerance {100 * self.tolerance_rate:.1f}%"]
        for function, rows in sorted(self.by_function().items()):
            cells = []
            for result in rows:
                code = result.case.code
                if isinstance(code, ErrorCode):
                    errno = code.errno or str(code.retval)
                else:
                    errno = code.describe()
                if result.outcome.status == STATUS_HUNG:
                    mark = "h"          # reaped by the per-case timeout
                elif not result.fired:
                    mark = "·"          # workload never called it
                elif result.outcome.crashed:
                    mark = "✗"
                elif result.outcome.status == "error-exit":
                    mark = "e"
                else:
                    mark = "✓"
                cells.append(f"{errno}:{mark}")
            lines.append(f"  {function:<12} " + " ".join(cells))
        lines.append("  legend: ✓ tolerated  e graceful error  "
                     "✗ crash  h hung  · not reached")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "kind": "campaign",
            "app": self.app,
            "outcome": self.outcome(),
            "duration": round(self.duration, 6),
            "cases": len(self.results),
            "fired": len(self.fired()),
            "crashes": len(self.crashes()),
            "hung": len(self.hung()),
            "not_reached": len(self.not_reached()),
            "tolerance_rate": round(self.tolerance_rate, 6),
            "results": [r.to_dict() for r in self.results],
            "summary": (self.summary.to_dict()
                        if self.summary is not None else None),
            **({"resumed": dict(self.resumed)}
               if self.resumed is not None else {}),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def enumerate_cases(profiles: Mapping[str, LibraryProfile],
                    *, functions: Optional[Sequence[str]] = None,
                    call_ordinals: Sequence[int] = (1,),
                    max_codes_per_function: Optional[int] = None,
                    fault_classes: Sequence[str] = ("return",),
                    latency_ns: int = 1_000_000,
                    fraction: float = 0.5,
                    fail_rate: Optional[float] = None,
                    ) -> List[FaultCase]:
    """Expand profiles into the systematic case list.

    ``fault_classes`` picks which action families to enumerate (any of
    :data:`FAULT_CLASSES`).  ``return`` expands per profiled error
    code; ``delay`` adds one :class:`DelayFault` of ``latency_ns`` per
    function; ``short-read`` / ``partial-write`` add a count-clamping
    fault (keeping ``fraction`` of the transfer) for the functions in
    :data:`READ_LIKE` / :data:`WRITE_LIKE`.  ``fail_rate`` turns every
    enumerated case probabilistic: instead of firing at an exact call
    ordinal, its plan rolls a content-derived recorded seed at that
    rate — replayable bit-identically under ``--resume``.

    ``fail_rate`` and ``call_ordinals`` are mutually exclusive axes: a
    probabilistic plan rolls its RNG on *every* call, so there is no
    ordinal to vary and each (function, action) pair yields exactly one
    case.  Passing explicit non-default ordinals together with
    ``fail_rate`` raises :class:`ValueError` (historically the
    ordinals were silently discarded).
    """
    for cls in fault_classes:
        if cls not in FAULT_CLASSES:
            raise ValueError(f"unknown fault class {cls!r} "
                             f"(choose from {', '.join(FAULT_CLASSES)})")
    if fail_rate is not None and tuple(call_ordinals) != (1,):
        raise ValueError(
            "call_ordinals and fail_rate cannot be combined: a "
            "fail-rate case rolls its RNG on every call, so it has no "
            "call ordinal to enumerate")
    wanted = set(functions) if functions is not None else None
    probability = 0.0 if fail_rate is None else fail_rate
    ordinals = call_ordinals if fail_rate is None else (1,)
    cases: List[FaultCase] = []
    for soname in sorted(profiles):
        for name in profiles[soname].function_names():
            if wanted is not None and name not in wanted:
                continue
            actions: List[Action] = []
            if "return" in fault_classes:
                codes = error_codes_from_profile(
                    profiles[soname].functions[name])
                if max_codes_per_function is not None:
                    codes = codes[:max_codes_per_function]
                actions.extend(codes)
            if "delay" in fault_classes:
                actions.append(DelayFault(latency_ns))
            if "short-read" in fault_classes and name in READ_LIKE:
                actions.append(ShortReadFault(fraction=fraction))
            if "partial-write" in fault_classes and name in WRITE_LIKE:
                actions.append(PartialWriteFault(fraction=fraction))
            for action in actions:
                for ordinal in ordinals:
                    cases.append(FaultCase(name, action, ordinal,
                                           probability=probability))
    return cases


def run_campaign(app: str,
                 factory: SessionFactory,
                 platform: Platform,
                 profiles: Mapping[str, LibraryProfile],
                 cases: Iterable[FaultCase],
                 *, jobs: int = 1,
                 timeout: Optional[float] = None,
                 backend: Optional[str] = None,
                 snapshot: bool = False,
                 telemetry=None,
                 results=None,
                 results_key: Optional[Mapping[str, Any]] = None,
                 resume: bool = False,
                 guided: bool = False,
                 budget_cases: Optional[int] = None) -> CampaignReport:
    """Run every fault case as its own monitored test.

    With the defaults (``jobs=1``, no timeout) cases run inline exactly
    as a plain loop would.  ``jobs > 1`` fans cases out over a
    :class:`repro.core.exec.WorkerPool` (``backend`` picks ``"thread"``
    or ``"process"``; default thread), and ``timeout`` bounds each
    case's wall time — an overrunning worker is reaped into a
    ``"hung"`` :class:`CaseResult` instead of stalling the campaign.
    Result ordering is the case order regardless of worker count.

    ``snapshot=True`` with a :class:`PrefixFactory` checkpoints the
    guest once per trigger function at workload-ready and replays only
    the post-trigger suffix per case; results are bit-identical to
    fresh runs (cases whose trigger would fire inside the prefix fall
    back to a fresh execution automatically).

    ``results`` (a :class:`~repro.core.results.ResultStore`) journals
    every finished case durably as the run drains; ``resume=True``
    additionally satisfies already-journaled cases from the store
    instead of re-running them.  ``results_key`` supplies extra
    campaign-identity components (images, heuristics, workload) for the
    store's content-addressed key.

    ``guided=True`` replaces the fixed schedule with the
    coverage-guided :class:`~repro.core.search.GuidedFrontier`:
    ``cases`` becomes the search space, the scheduler runs the
    highest-novelty cases first, prunes subsumed ones and expands
    promising call ordinals, and ``budget_cases`` caps how many cases
    actually execute.
    """
    from .exec.engine import execute_campaign

    return execute_campaign(app, factory, platform, profiles, cases,
                            jobs=jobs, timeout=timeout, backend=backend,
                            snapshot=snapshot, telemetry=telemetry,
                            results=results, results_key=results_key,
                            resume=resume, guided=guided,
                            budget_cases=budget_cases)
