"""The repro.Session facade: load -> profile -> campaign in one chain."""

import json
import warnings

import pytest

import repro
from repro import Session
from repro.core.campaign import enumerate_cases, run_campaign
from repro.core.controller import TestOutcome, TestReport
from repro.core.profiler import Profiler
from repro.core.store import ProfileStore
from repro.errors import ReproError
from repro.kernel import Kernel, O_CREAT, O_RDWR
from repro.platform import LINUX_X86


def _copytool_factory(libc_image):
    def factory(lfi):
        def session():
            proc = lfi.make_process(Kernel(), [libc_image])
            fd = proc.libcall("open", proc.cstr("/f"),
                              O_CREAT | O_RDWR, 0o644)
            rc = proc.libcall("close", fd)
            return 1 if rc != 0 else 0
        return session
    return factory


class TestFacade:
    def test_exported_at_top_level(self):
        assert repro.Session is Session
        assert "Session" in repro.__all__
        # the lower-level names remain public
        assert repro.Profiler and repro.Controller and repro.ProfileStore

    def test_fluent_chain_matches_direct_api(self, libc_linux,
                                             kernel_image_linux):
        factory = _copytool_factory(libc_linux.image)
        session = Session(LINUX_X86, app="copytool",
                          kernel_image=kernel_image_linux)
        report = (session
                  .load(libc_linux)
                  .profile()
                  .campaign(factory, functions=["close"]))

        profiles = {"libc.so.6": session.profiles["libc.so.6"]}
        cases = enumerate_cases(profiles, functions=["close"])
        direct = run_campaign("copytool", factory, LINUX_X86,
                              profiles, cases)
        assert [(r.case.case_id(), r.outcome.status)
                for r in report.results] \
            == [(r.case.case_id(), r.outcome.status)
                for r in direct.results]

    def test_platform_by_name(self):
        assert Session("solaris-sparc").platform.name == "solaris-sparc"

    def test_load_accepts_mappings_paths_and_builds(self, tmp_path,
                                                    libc_linux):
        path = tmp_path / "libc.self"
        path.write_bytes(libc_linux.image.to_bytes())
        by_build = Session().load(libc_linux)
        by_image = Session().load(libc_linux.image)
        by_map = Session().load({"libc.so.6": libc_linux.image})
        by_path = Session().load(path)
        by_list = Session().load([libc_linux.image])
        for s in (by_build, by_image, by_map, by_path, by_list):
            assert set(s.images) == {"libc.so.6"}

    def test_load_rejects_junk(self):
        with pytest.raises(TypeError):
            Session().load(42)

    def test_profile_without_images_raises(self):
        with pytest.raises(ReproError):
            Session().profile()

    def test_profiles_property_profiles_lazily(self, libc_linux,
                                               kernel_image_linux):
        session = Session(LINUX_X86, kernel_image=kernel_image_linux)
        session.load(libc_linux)
        assert session._profiles is None
        assert "close" in {f for f in
                           session.profiles["libc.so.6"].functions}
        # idempotent: a second profile() is a no-op
        before = len(session.summaries)
        session.profile()
        assert len(session.summaries) == before

    def test_load_invalidates_profiles(self, libc_linux,
                                       kernel_image_linux):
        session = Session(LINUX_X86, kernel_image=kernel_image_linux)
        session.load(libc_linux).profile()
        assert session._profiles is not None
        session.load(libc_linux)
        assert session._profiles is None


class TestRunSummaryJson:
    def test_summary_covers_all_stages(self, libc_linux,
                                       kernel_image_linux, tmp_path):
        session = Session(LINUX_X86, app="copytool", jobs=2,
                          store=tmp_path / "cache",
                          kernel_image=kernel_image_linux)
        session.load(libc_linux).profile()
        session.campaign(_copytool_factory(libc_linux.image),
                         functions=["close"],
                         max_codes_per_function=2)
        data = json.loads(session.summary_json())
        assert data["schema"] == "repro.run-summary/1"
        assert data["app"] == "copytool"
        assert [s["kind"] for s in data["stages"]] \
            == ["profile", "campaign"]
        campaign_stage = data["stages"][1]
        assert campaign_stage["cases"] == 2
        assert campaign_stage["cases_per_second"] > 0
        assert "cache" in campaign_stage

    def test_shared_key_triple_across_report_types(self, libc_linux,
                                                   kernel_image_linux):
        """Satellite: CampaignReport, TestReport and RunSummary all
        serialize the same app/outcome/duration triple."""
        session = Session(LINUX_X86, app="copytool",
                          kernel_image=kernel_image_linux)
        session.load(libc_linux)
        campaign = session.campaign(_copytool_factory(libc_linux.image),
                                    functions=["close"],
                                    max_codes_per_function=1)
        test_report = TestReport(app="copytool")
        test_report.outcomes.append(TestOutcome(test_id="t",
                                                status="normal"))
        dicts = [campaign.to_dict(), test_report.to_dict(),
                 session.summaries[-1].to_dict()]
        for data in dicts:
            assert data["schema"] == "repro.report/1"
            assert data["app"] == "copytool"
            assert isinstance(data["outcome"], str)
            assert isinstance(data["duration"], float)


class TestStoreIntegration:
    def test_memory_lru_shared_across_stores(self, tmp_path, libc_linux,
                                             kernel_image_linux):
        first = Session(LINUX_X86, store=tmp_path / "a",
                        kernel_image=kernel_image_linux)
        first.load(libc_linux).profile()
        assert first.store.misses == 1

        # different directory, same image: served from the process LRU
        second = Session(LINUX_X86, store=tmp_path / "b",
                         kernel_image=kernel_image_linux)
        second.load(libc_linux).profile()
        assert second.store.misses == 0
        assert second.store.memory_hits == 1
        stage = second.summaries[-1]
        assert stage.cache_memory_hits == 1 and stage.cache_misses == 0


class TestDeprecationShims:
    def test_profiler_libraries_kwarg_warns_but_works(self, libc_linux):
        with pytest.warns(DeprecationWarning, match="libraries"):
            profiler = Profiler(
                LINUX_X86, libraries={"libc.so.6": libc_linux.image})
        assert profiler.images == {"libc.so.6": libc_linux.image}
        assert profiler.libraries is profiler.images   # read alias stays

    def test_store_libraries_kwarg_warns_but_works(self, tmp_path,
                                                   libc_linux):
        store = ProfileStore(tmp_path)
        with pytest.warns(DeprecationWarning, match="libraries"):
            profiles = store.profile_or_load(
                LINUX_X86, libraries={"libc.so.6": libc_linux.image})
        assert "libc.so.6" in profiles

    def test_images_kwarg_is_silent(self, tmp_path, libc_linux):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Profiler(LINUX_X86, images={"libc.so.6": libc_linux.image})
            ProfileStore(tmp_path).profile_or_load(
                LINUX_X86, images={"libc.so.6": libc_linux.image})
