"""The metrics registry: instruments, snapshots, the text exposition."""

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                               NULL_REGISTRY, NullRegistry,
                               aggregate_histogram, histogram_quantile,
                               quantiles_from_snapshot)


class TestCounter:
    def test_inc_and_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "Things",
                                   ("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3
        assert counter.value(kind="b") == 1
        assert counter.total() == 4

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("repro_x_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_unknown_label_rejected(self):
        counter = MetricsRegistry().counter("repro_x_total",
                                            labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc(flavor="wrong")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6


class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_bucket(self):
        """The Prometheus le rule: an observation equal to a bound
        belongs to that bound's bucket, not the next one."""
        hist = MetricsRegistry().histogram("repro_h", buckets=(1, 5, 10))
        hist.observe(1.0)        # == first bound -> bucket "1"
        hist.observe(1.0001)     # just above     -> bucket "5"
        hist.observe(10.0)       # == last bound  -> bucket "10"
        hist.observe(10.5)       # above all      -> "+Inf"
        (values,) = hist._snapshot_values()
        assert values["buckets"] == {"1": 1, "5": 1, "10": 1, "+Inf": 1}
        assert values["count"] == 4
        assert values["sum"] == pytest.approx(22.5001)

    def test_bounds_are_sorted_and_unique(self):
        hist = MetricsRegistry().histogram("repro_h", buckets=(5, 1, 10))
        assert hist.buckets == (1.0, 5.0, 10.0)
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_dup", buckets=(1, 1))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_none", buckets=())

    def test_default_buckets_cover_seconds(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        assert DEFAULT_BUCKETS[-1] == 60.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "X")
        b = registry.counter("repro_x_total")
        assert a is b

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(TypeError):
            registry.gauge("repro_x_total")

    def test_labelnames_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labelnames=("a",))
        with pytest.raises(TypeError):
            registry.counter("repro_x_total", labelnames=("b",))


class TestSnapshotRestoreMerge:
    def _populate(self, registry):
        registry.counter("repro_cases_total", "Cases",
                         ("status",)).inc(3, status="ok")
        registry.gauge("repro_util", "Utilization").set(0.5)
        registry.histogram("repro_case_seconds", "Seconds",
                           buckets=(0.1, 1.0)).observe(0.05)

    def test_snapshot_restore_round_trip(self):
        registry = MetricsRegistry()
        self._populate(registry)
        snap = registry.snapshot()
        again = MetricsRegistry.restore(snap)
        assert again.snapshot() == snap

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        self._populate(a)
        self._populate(b)
        b.gauge("repro_util").set(0.9)
        a.merge(b.snapshot())
        assert a.counter("repro_cases_total",
                         labelnames=("status",)).value(status="ok") == 6
        hist = a.histogram("repro_case_seconds", buckets=(0.1, 1.0))
        assert hist.count() == 2
        assert a.gauge("repro_util").value() == 0.9   # gauges: last wins

    def test_merge_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge({"x": {"type": "mystery"}})


class TestRenderText:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_injections_total", "Injections performed",
                         ("function", "errno")).inc(
            2, function="close", errno="EIO")
        registry.gauge("repro_util", "Worker utilization").set(0.25)
        text = registry.render_text()
        assert "# HELP repro_injections_total Injections performed" in text
        assert "# TYPE repro_injections_total counter" in text
        assert ('repro_injections_total{errno="EIO",function="close"} 2'
                in text)
        assert "# TYPE repro_util gauge" in text
        assert "repro_util 0.25" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h", "H", buckets=(1, 5))
        for value in (0.5, 0.7, 3.0, 99.0):
            hist.observe(value)
        text = registry.render_text()
        assert 'repro_h_bucket{le="1"} 2' in text
        assert 'repro_h_bucket{le="5"} 3' in text
        assert 'repro_h_bucket{le="+Inf"} 4' in text
        assert "repro_h_sum 103.2" in text
        assert "repro_h_count 4" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labelnames=("path",)).inc(
            path='say "hi"\n')
        assert r'path="say \"hi\"\n"' in registry.render_text()


class TestNullRegistry:
    def test_instruments_absorb_everything(self):
        counter = NULL_REGISTRY.counter("repro_x_total", "X", ("a",))
        counter.inc(5, a="yes")
        assert counter.value(a="yes") == 0.0
        hist = NULL_REGISTRY.histogram("repro_h")
        hist.observe(1.0)
        assert hist.count() == 0
        NULL_REGISTRY.gauge("repro_g").set(9)

    def test_disabled_and_empty(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.render_text() == ""
        assert isinstance(NULL_REGISTRY, NullRegistry)


class TestQuantiles:
    """The ``repro stats`` latency section: quantiles from snapshots."""

    def _snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_ns", labelnames=("page",),
                                  buckets=(1.0, 2.0, 4.0, 8.0))
        for value, page in ((0.5, "a"), (1.5, "a"), (3.0, "b"), (10.0, "b")):
            hist.observe(value, page=page)
        return registry.snapshot()

    def test_aggregate_sums_across_label_sets(self):
        bounds, counts, count, total = aggregate_histogram(
            self._snapshot()["repro_lat_ns"])
        assert bounds == [1.0, 2.0, 4.0, 8.0]
        assert counts == [1, 1, 1, 0, 1]    # per-bin, +Inf overflow last
        assert count == 4
        assert total == pytest.approx(15.0)

    def test_quantile_interpolates_within_bucket(self):
        assert histogram_quantile(0.5, [10.0], [4, 0]) \
            == pytest.approx(5.0)

    def test_overflow_clamps_to_largest_finite_bound(self):
        bounds, counts, _, _ = aggregate_histogram(
            self._snapshot()["repro_lat_ns"])
        assert histogram_quantile(0.99, bounds, counts) \
            == pytest.approx(8.0)

    def test_empty_histogram_has_no_quantiles(self):
        assert histogram_quantile(0.5, [1.0, 2.0], [0, 0, 0]) is None

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantile(1.5, [1.0], [1, 0])

    def test_snapshot_summary_round_trip(self):
        summary = quantiles_from_snapshot(self._snapshot(), "repro_lat_ns")
        assert summary["count"] == 4.0
        assert summary["mean"] == pytest.approx(3.75)
        assert summary["p50"] == pytest.approx(2.0)
        assert summary["p99"] == pytest.approx(8.0)

    def test_summary_none_for_missing_or_non_histogram(self):
        snapshot = self._snapshot()
        assert quantiles_from_snapshot(snapshot, "nope") is None
        registry = MetricsRegistry()
        registry.counter("repro_c_total").inc()
        assert quantiles_from_snapshot(registry.snapshot(),
                                       "repro_c_total") is None

    def test_merge_preserves_quantiles(self):
        # a worker ships its snapshot; the parent merges and the
        # latency summary survives the round trip bit-for-bit
        merged = MetricsRegistry()
        merged.merge(self._snapshot())
        merged.merge(self._snapshot())
        summary = quantiles_from_snapshot(merged.snapshot(),
                                          "repro_lat_ns")
        assert summary["count"] == 8.0
        assert summary["mean"] == pytest.approx(3.75)
        assert summary["p50"] == pytest.approx(2.0)
