"""Control-flow graph construction from disassembled binaries (§3.1).

The CFG is built by *exploration from the entry point* (not linear
sweep): the worklist follows direct branches and fall-through edges, so
it works equally on stripped and unstripped libraries — exactly the
property LFI claims.  Indirect branches terminate their block with no
successors; the paper measured only 0.13% of branches to be indirect and
"currently ignores the resulting CFG incompleteness", as do we (the flag
is recorded so the §3.1 statistics can be reproduced).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...binfmt import SharedObject
from ...errors import DecodingError, ProfilerError
from ...isa import Abi, ImportSlot, Reg, Rel, decode_instruction
from ...isa.instructions import Decoded


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int
    instructions: List[Decoded] = field(default_factory=list)
    successors: Tuple[int, ...] = ()
    has_indirect_branch: bool = False

    @property
    def end(self) -> int:
        last = self.instructions[-1]
        return last.addr + last.size

    @property
    def terminator(self) -> Decoded:
        return self.instructions[-1]

    def is_exit(self) -> bool:
        return self.terminator.insn.mnemonic == "ret"


@dataclass
class Cfg:
    """CFG of one function, addressed by module-relative offsets."""

    entry: int
    blocks: Dict[int, BasicBlock]
    incomplete: bool = False     # an indirect branch cut exploration

    _preds: Optional[Dict[int, List[int]]] = None

    def block_at(self, addr: int) -> BasicBlock:
        return self.blocks[addr]

    def exit_blocks(self) -> List[BasicBlock]:
        return [b for b in self.blocks.values() if b.is_exit()]

    def predecessors(self, block_start: int) -> List[int]:
        if self._preds is None:
            preds: Dict[int, List[int]] = {start: [] for start in self.blocks}
            for start, block in self.blocks.items():
                for succ in block.successors:
                    preds.setdefault(succ, []).append(start)
            self._preds = preds
        return self._preds.get(block_start, [])

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks.values())

    def code_size(self) -> int:
        return sum(b.end - b.start for b in self.blocks.values())


@dataclass
class CfgStats:
    """Branch/call indirection statistics for the §3.1 measurements."""

    branches: int = 0
    indirect_branches: int = 0
    calls: int = 0
    indirect_calls: int = 0

    def merge(self, other: "CfgStats") -> None:
        self.branches += other.branches
        self.indirect_branches += other.indirect_branches
        self.calls += other.calls
        self.indirect_calls += other.indirect_calls


def build_cfg(image: SharedObject, entry: int, abi: Abi,
              *, stats: Optional[CfgStats] = None) -> Cfg:
    """Explore the function at module-relative offset ``entry``."""
    text = image.text
    if not (0 <= entry < len(text)):
        raise ProfilerError(
            f"{image.soname}: entry {entry:#x} outside .text")

    # Pass 1: discover instructions and leaders.
    instructions: Dict[int, Decoded] = {}
    leaders: Set[int] = {entry}
    worklist: List[int] = [entry]
    incomplete = False
    local_stats = CfgStats()

    while worklist:
        addr = worklist.pop()
        while addr not in instructions:
            try:
                insn, size = decode_instruction(text, addr, abi)
            except DecodingError:
                # ran off the function or into data; treat as cut point
                incomplete = True
                break
            decoded = Decoded(addr=addr, size=size, insn=insn)
            instructions[addr] = decoded
            m = insn.mnemonic
            if m == "ret" or m == "hlt":
                break
            if m == "jmp":
                op = insn.operands[0]
                local_stats.branches += 1
                if isinstance(op, Rel):
                    target = decoded.branch_target()
                    leaders.add(target)
                    worklist.append(target)
                else:
                    local_stats.indirect_branches += 1
                    incomplete = True
                break
            if insn.is_conditional:
                local_stats.branches += 1
                # garbage bytes can decode to a conditional jump with a
                # non-Rel operand; real assembly never emits one
                if not isinstance(insn.operands[0], Rel):
                    local_stats.indirect_branches += 1
                    incomplete = True
                    break
                target = decoded.branch_target()
                leaders.add(target)
                worklist.append(target)
                leaders.add(addr + size)
                addr += size
                continue
            if m == "call":
                op = insn.operands[0]
                local_stats.calls += 1
                if isinstance(op, Reg):
                    local_stats.indirect_calls += 1
                # fall through past the call (callees are analyzed
                # separately, recursively)
                addr += size
                continue
            addr += size

    # Pass 2: slice into basic blocks.
    blocks: Dict[int, BasicBlock] = {}
    sorted_addrs = sorted(instructions)
    addr_index = {a: i for i, a in enumerate(sorted_addrs)}
    for leader in sorted(leaders):
        if leader not in instructions:
            continue
        block = BasicBlock(start=leader)
        i = addr_index[leader]
        while i < len(sorted_addrs):
            decoded = instructions[sorted_addrs[i]]
            block.instructions.append(decoded)
            nxt = decoded.addr + decoded.size
            m = decoded.insn.mnemonic
            if m in ("ret", "hlt"):
                block.successors = ()
                break
            if m == "jmp":
                op = decoded.insn.operands[0]
                if isinstance(op, Rel):
                    block.successors = (decoded.branch_target(),)
                else:
                    block.successors = ()
                    block.has_indirect_branch = True
                break
            if decoded.insn.is_conditional:
                if not isinstance(decoded.insn.operands[0], Rel):
                    block.successors = ()
                    block.has_indirect_branch = True
                    break
                block.successors = (decoded.branch_target(), nxt)
                break
            if nxt in leaders:
                block.successors = (nxt,)
                break
            if nxt not in instructions:   # decode cut
                block.successors = ()
                break
            i += 1
            continue
        if block.instructions:
            blocks[leader] = block

    if stats is not None:
        stats.merge(local_stats)
    return Cfg(entry=entry, blocks=blocks, incomplete=incomplete)


def direct_call_targets(cfg: Cfg) -> List[int]:
    """Module-relative targets of direct calls (dependent functions)."""
    targets: List[int] = []
    for block in cfg.blocks.values():
        for decoded in block.instructions:
            if decoded.insn.mnemonic != "call":
                continue
            op = decoded.insn.operands[0]
            if isinstance(op, Rel):
                target = decoded.branch_target()
                if target != decoded.addr + decoded.size:  # skip PIC thunk
                    targets.append(target)
    return targets


def import_call_slots(cfg: Cfg) -> List[int]:
    """PLT slots called by this function (cross-library dependents)."""
    slots: List[int] = []
    for block in cfg.blocks.values():
        for decoded in block.instructions:
            if decoded.insn.mnemonic == "call":
                op = decoded.insn.operands[0]
                if isinstance(op, ImportSlot):
                    slots.append(op.slot)
    return slots
