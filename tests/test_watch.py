"""Live journal tailing: the ``repro watch`` reader and view.

The tailer must share the ``--resume`` reader's tolerance — torn final
lines, foreign records, last-wins per case — while consuming the file
incrementally underneath a live writer, including across truncation
and rotation.
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.errors import ResultsError
from repro.obs.report import (CampaignWatch, JournalTailer, resolve_journal,
                              watch_journal)

_CAMPAIGN = "deadbeefdeadbeef"


def _record(case_key, case, *, function="open", status="normal",
            cls="survived", fired=True, campaign=_CAMPAIGN, **extra):
    record = {"schema": "repro.case-result/1", "campaign": campaign,
              "case_key": case_key, "case": case, "function": function,
              "fault_class": "return", "status": status,
              "outcome_class": cls, "fired": fired}
    record.update(extra)
    return record


def _write(path, *records, newline=True):
    with open(path, "a", encoding="utf-8") as fh:
        for i, record in enumerate(records):
            tail = "\n" if newline or i < len(records) - 1 else ""
            fh.write(json.dumps(record, sort_keys=True) + tail)


@pytest.fixture()
def campaign_dir(tmp_path):
    root = tmp_path / _CAMPAIGN
    root.mkdir()
    (root / "meta.json").write_text(json.dumps({
        "schema": "repro.results-meta/1", "campaign": _CAMPAIGN,
        "app": "demo", "cases_expected": 3, "golden": "feedface"}))
    return root


class TestJournalTailer:
    def test_incremental_polls_return_only_new_records(self, campaign_dir):
        journal = campaign_dir / "journal.jsonl"
        tailer = JournalTailer(journal, _CAMPAIGN)
        assert tailer.poll() == []          # nothing written yet
        _write(journal, _record("k1", "open@1"))
        assert [r["case"] for r in tailer.poll()] == ["open@1"]
        assert tailer.poll() == []
        _write(journal, _record("k2", "read@1"), _record("k3", "close@1"))
        assert [r["case"] for r in tailer.poll()] == ["read@1", "close@1"]
        assert set(tailer.records) == {"k1", "k2", "k3"}

    def test_last_record_wins_per_case_key(self, campaign_dir):
        journal = campaign_dir / "journal.jsonl"
        _write(journal, _record("k1", "open@1", cls="survived"),
               _record("k1", "open@1", cls="crash", status="SIGSEGV"))
        tailer = JournalTailer(journal, _CAMPAIGN)
        tailer.poll()
        assert len(tailer.records) == 1
        assert tailer.records["k1"]["outcome_class"] == "crash"

    def test_torn_final_line_not_consumed_until_complete(self,
                                                         campaign_dir):
        journal = campaign_dir / "journal.jsonl"
        _write(journal, _record("k1", "open@1"))
        full = json.dumps(_record("k2", "read@1"), sort_keys=True)
        half = full[:len(full) // 2]
        journal.write_text(journal.read_text() + half)

        tailer = JournalTailer(journal, _CAMPAIGN)
        assert [r["case"] for r in tailer.poll()] == ["open@1"]
        assert tailer.poll() == []          # the torn tail stays unread
        # the writer finishes the line: the record appears whole
        journal.write_text(journal.read_text() + full[len(half):] + "\n")
        assert [r["case"] for r in tailer.poll()] == ["read@1"]

    def test_garbage_and_foreign_lines_are_skipped(self, campaign_dir):
        journal = campaign_dir / "journal.jsonl"
        with open(journal, "a") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({"schema": "other/1"}) + "\n")
            fh.write(json.dumps(_record("kx", "x@1",
                                        campaign="feedfeedfeed"),
                                sort_keys=True) + "\n")
        _write(journal, _record("k1", "open@1"))
        tailer = JournalTailer(journal, _CAMPAIGN)
        assert [r["case"] for r in tailer.poll()] == ["open@1"]

    def test_truncation_reopens_from_start(self, campaign_dir):
        journal = campaign_dir / "journal.jsonl"
        _write(journal, _record("k1", "open@1"), _record("k2", "read@1"))
        tailer = JournalTailer(journal, _CAMPAIGN)
        assert len(tailer.poll()) == 2
        # rotation: the journal is replaced with a shorter file
        journal.write_text("")
        _write(journal, _record("k9", "write@1"))
        fresh = tailer.poll()
        assert tailer.reopened == 1
        assert [r["case"] for r in fresh] == ["write@1"]
        assert set(tailer.records) == {"k9"}

    def test_concurrent_append_while_polling(self, campaign_dir):
        journal = campaign_dir / "journal.jsonl"
        total = 40

        def writer():
            for i in range(total):
                _write(journal, _record(f"k{i}", f"case@{i}"))

        tailer = JournalTailer(journal, _CAMPAIGN)
        thread = threading.Thread(target=writer)
        thread.start()
        deadline = time.monotonic() + 30.0
        while len(tailer.records) < total:
            tailer.poll()
            assert time.monotonic() < deadline, \
                f"only {len(tailer.records)}/{total} records seen"
        thread.join()
        assert set(tailer.records) == {f"k{i}" for i in range(total)}


class TestResolveJournal:
    def test_journal_path_campaign_dir_and_store_root(self, campaign_dir):
        journal = campaign_dir / "journal.jsonl"
        _write(journal, _record("k1", "open@1"))
        for source in (journal, campaign_dir, campaign_dir.parent):
            path, meta = resolve_journal(source)
            assert path == journal
            assert meta.get("campaign") == _CAMPAIGN

    def test_missing_path_is_an_error(self, tmp_path):
        with pytest.raises(ResultsError):
            resolve_journal(tmp_path / "nowhere")


class TestCampaignWatch:
    def test_snapshot_counts_and_eta(self, campaign_dir):
        journal = campaign_dir / "journal.jsonl"
        now = [0.0]
        watch = CampaignWatch(campaign_dir, clock=lambda: now[0])
        watch.refresh()                     # baseline: empty journal
        _write(journal,
               _record("k1", "open@1", cls="detected-error",
                       status="error-exit"),
               _record("k2", "read@1", cls="survived"))
        now[0] = 4.0
        watch.refresh()
        snap = watch.snapshot()
        assert snap["cases"] == 2
        assert snap["expected"] == 3
        assert snap["classes"]["detected-error"] == 1
        assert snap["classes"]["survived"] == 1
        assert snap["rate"] == pytest.approx(0.5)
        assert snap["eta_seconds"] == pytest.approx(2.0)
        assert not watch.done()

    def test_render_includes_matrix_and_progress(self, campaign_dir):
        journal = campaign_dir / "journal.jsonl"
        _write(journal,
               _record("k1", "open@1", cls="silent-corruption",
                       output="c0ffee"),
               _record("k2", "read@1", cls="survived"),
               _record("k3", "close@1", fired=False, cls=None))
        watch = CampaignWatch(campaign_dir)
        watch.refresh()
        text = watch.render()
        assert "3/3 cases (100%)" in text
        assert "silent-corruption=1" in text
        assert "not-reached=1" in text
        assert "failure-mode matrix" in text
        assert watch.done()

    def test_classification_falls_back_for_legacy_records(self,
                                                          campaign_dir):
        # a pre-observatory journal has no outcome_class: the watch
        # classifies from status (never silent-corruption)
        journal = campaign_dir / "journal.jsonl"
        record = _record("k1", "open@1", status="hung")
        del record["outcome_class"]
        _write(journal, record)
        watch = CampaignWatch(campaign_dir)
        watch.refresh()
        assert watch.snapshot()["classes"]["hang"] == 1


class TestWatchLoop:
    def test_once_renders_single_frame(self, campaign_dir):
        _write(campaign_dir / "journal.jsonl",
               _record("k1", "open@1"))
        out = io.StringIO()
        assert watch_journal(campaign_dir, once=True, stream=out) == 0
        assert "watching campaign" in out.getvalue()

    def test_loop_follows_a_live_writer_until_done(self, campaign_dir):
        journal = campaign_dir / "journal.jsonl"
        _write(journal, _record("k1", "open@1"))
        pending = [_record("k2", "read@1"), _record("k3", "close@1")]

        def fake_sleep(_):
            # the writer lands one more record between polls
            if pending:
                _write(journal, pending.pop(0))

        out = io.StringIO()
        code = watch_journal(campaign_dir, interval=0.0, stream=out,
                             sleep=fake_sleep, max_polls=10)
        assert code == 0
        assert not pending                  # everything got written
        frames = out.getvalue()
        assert "1/3 cases" in frames        # first frame
        assert "3/3 cases (100%)" in frames  # final frame ended the loop
