"""Simulated kernel: errno, syscalls, VFS, pipes, sockets, and the
statically-analyzable kernel image."""

from .errno import ERRNO_NAMES, ERRNO_NUMBERS, errno_name, errno_number, strerror
from .image import build_kernel_image, handler_name
from .kernel import FileDesc, Kernel, KProcState, ProcessExit
from .pipes import Pipe, PipeError
from .sockets import Endpoint, Socket, SocketError, SocketTable
from .syscalls import SYSCALL_BY_NAME, SYSCALL_BY_NR, SYSCALLS, SyscallSpec, spec
from .vfs import (O_APPEND, O_CREAT, O_DIRECTORY, O_EXCL, O_RDONLY, O_RDWR,
                  O_TRUNC, O_WRONLY, Vfs, VfsError, VNode)

__all__ = [
    "errno_name", "errno_number", "strerror", "ERRNO_NAMES", "ERRNO_NUMBERS",
    "Kernel", "KProcState", "FileDesc", "ProcessExit",
    "Pipe", "PipeError", "Socket", "SocketTable", "SocketError", "Endpoint",
    "SYSCALLS", "SYSCALL_BY_NAME", "SYSCALL_BY_NR", "SyscallSpec", "spec",
    "Vfs", "VfsError", "VNode",
    "O_RDONLY", "O_WRONLY", "O_RDWR", "O_CREAT", "O_EXCL", "O_TRUNC",
    "O_APPEND", "O_DIRECTORY",
    "build_kernel_image", "handler_name",
]
