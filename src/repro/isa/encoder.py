"""Byte encoding and decoding of instructions.

Libraries in this ecosystem are *real byte blobs*: the profiler never sees
our IR directly, it disassembles ``.text`` bytes exactly the way LFI drives
``objdump``/``dumpbin`` (§3.1).  The encoding is a simple tag-length-value
scheme with variable instruction sizes, so disassembly addresses behave
like on a CISC machine.

Layout of one instruction::

    opcode:u8  (tag:u8 payload...)*arity

Operand payloads::

    tag 1  Reg        reg_id:u8
    tag 2  Imm        value:i32le
    tag 3  Mem        flags:u8 [base:u8] [index:u8 scale:u8] disp:i32le
                      flags bit0=base bit1=index bit2=gs-segment
    tag 4  Rel        disp:i32le  (relative to end of instruction)
    tag 5  ImportSlot slot:u16le
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Tuple

from ..errors import DecodingError, EncodingError
from .abi import Abi
from .instructions import ARITY_OF, MNEMONICS, OPCODE_OF, Decoded, Instruction
from .operands import (SEGMENT_TLS, Imm, ImportSlot, Label, LabelImm, Mem,
                       Operand, Reg, Rel)

_TAG_REG = 1
_TAG_IMM = 2
_TAG_MEM = 3
_TAG_REL = 4
_TAG_SLOT = 5

_I32 = struct.Struct("<i")
_U16 = struct.Struct("<H")


def encode_instruction(insn: Instruction, abi: Abi) -> bytes:
    """Encode one instruction to bytes under the given machine's ABI."""
    out = bytearray([OPCODE_OF[insn.mnemonic]])
    for op in insn.operands:
        if isinstance(op, Reg):
            out.append(_TAG_REG)
            out.append(abi.reg_id(op.name))
        elif isinstance(op, Imm):
            out.append(_TAG_IMM)
            out += _I32.pack(op.value)
        elif isinstance(op, Mem):
            out.append(_TAG_MEM)
            flags = ((1 if op.base else 0)
                     | (2 if op.index else 0)
                     | (4 if op.segment == SEGMENT_TLS else 0))
            out.append(flags)
            if op.base:
                out.append(abi.reg_id(op.base))
            if op.index:
                out.append(abi.reg_id(op.index))
                out.append(op.scale)
            out += _I32.pack(op.disp)
        elif isinstance(op, Rel):
            out.append(_TAG_REL)
            out += _I32.pack(op.disp)
        elif isinstance(op, ImportSlot):
            out.append(_TAG_SLOT)
            out += _U16.pack(op.slot)
        elif isinstance(op, (Label, LabelImm)):
            raise EncodingError(
                f"unresolved label {op.name!r} in {insn.render()}; "
                "assemble() must run before encoding")
        else:  # pragma: no cover - defensive
            raise EncodingError(f"cannot encode operand {op!r}")
    return bytes(out)


def encode_program(insns: Iterable[Instruction], abi: Abi) -> bytes:
    """Encode a straight-line sequence of already-resolved instructions."""
    return b"".join(encode_instruction(i, abi) for i in insns)


def measure(insn: Instruction) -> int:
    """Encoded size of an instruction, without actually encoding it.

    Needed by the assembler to lay out code before branch displacements
    are known.  Labels measure like the Rel they will become.
    """
    size = 1
    for op in insn.operands:
        if isinstance(op, Reg):
            size += 2
        elif isinstance(op, (Imm, LabelImm)):
            size += 5
        elif isinstance(op, Mem):
            size += 2 + (1 if op.base else 0) + (2 if op.index else 0) + 4
        elif isinstance(op, (Rel, Label)):
            size += 5
        elif isinstance(op, ImportSlot):
            size += 3
        else:  # pragma: no cover - defensive
            raise EncodingError(f"cannot measure operand {op!r}")
    return size


def decode_instruction(code: bytes, offset: int, abi: Abi) -> Tuple[Instruction, int]:
    """Decode one instruction at ``offset``; return (instruction, size)."""
    start = offset
    try:
        opcode = code[offset]
    except IndexError:
        raise DecodingError(f"truncated instruction at {offset:#x}") from None
    if opcode >= len(MNEMONICS):
        raise DecodingError(f"bad opcode {opcode:#x} at {offset:#x}")
    mnemonic, arity = MNEMONICS[opcode]
    offset += 1
    operands: List[Operand] = []
    try:
        for _ in range(arity):
            tag = code[offset]
            offset += 1
            if tag == _TAG_REG:
                operands.append(Reg(abi.reg_name(code[offset])))
                offset += 1
            elif tag == _TAG_IMM:
                operands.append(Imm(_I32.unpack_from(code, offset)[0]))
                offset += 4
            elif tag == _TAG_MEM:
                flags = code[offset]
                offset += 1
                if flags & ~0x07:
                    # only bits 0-2 are defined; accepting stray bits
                    # would decode bytes that cannot re-encode
                    raise DecodingError(
                        f"bad memory operand flags {flags:#x} "
                        f"at {offset - 1:#x}")
                base = index = None
                scale = 1
                if flags & 1:
                    base = abi.reg_name(code[offset])
                    offset += 1
                if flags & 2:
                    index = abi.reg_name(code[offset])
                    scale = code[offset + 1]
                    offset += 2
                disp = _I32.unpack_from(code, offset)[0]
                offset += 4
                segment = SEGMENT_TLS if flags & 4 else None
                operands.append(Mem(base=base, index=index, scale=scale,
                                    disp=disp, segment=segment))
            elif tag == _TAG_REL:
                operands.append(Rel(_I32.unpack_from(code, offset)[0]))
                offset += 4
            elif tag == _TAG_SLOT:
                operands.append(ImportSlot(_U16.unpack_from(code, offset)[0]))
                offset += 2
            else:
                raise DecodingError(
                    f"bad operand tag {tag:#x} at {offset - 1:#x}")
    except (IndexError, struct.error):
        raise DecodingError(f"truncated instruction at {start:#x}") from None
    except ValueError as exc:
        raise DecodingError(f"malformed operand at {start:#x}: {exc}") from None
    return Instruction(mnemonic, tuple(operands)), offset - start


def decode_range(code: bytes, start: int, end: int, abi: Abi) -> List[Decoded]:
    """Linear-sweep disassembly of ``code[start:end]``."""
    out: List[Decoded] = []
    offset = start
    while offset < end:
        insn, size = decode_instruction(code, offset, abi)
        out.append(Decoded(addr=offset, size=size, insn=insn))
        offset += size
    return out
