"""The metrics registry: counters, gauges, fixed-bucket histograms.

Naming follows the Prometheus conventions — ``repro_`` prefix,
``_total`` suffix on counters, ``_seconds`` on time histograms — and
``render_text()`` emits the text exposition format, so a saved snapshot
drops straight into existing dashboards.  ``snapshot()`` returns a plain
dict (JSON- and pickle-friendly); ``MetricsRegistry.restore`` rebuilds a
registry from one and ``merge`` folds one in, which is how campaign
workers' per-case registries aggregate into the parent's across thread
*and* process boundaries.

``NULL_REGISTRY`` is the no-op default: instruments exist but every
``inc``/``set``/``observe`` is a single no-op method call, keeping the
uninstrumented hot path at effectively zero overhead.
"""

from __future__ import annotations

import bisect
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

_INF = float("inf")


def _label_key(labelnames: Sequence[str],
               labels: Mapping[str, Any]) -> Tuple[str, ...]:
    unknown = set(labels) - set(labelnames)
    if unknown:
        raise ValueError(f"unknown label(s) {sorted(unknown)}; "
                         f"declared labels are {list(labelnames)}")
    return tuple(str(labels.get(name, "")) for name in labelnames)


def _labels_dict(labelnames: Sequence[str],
                 key: Tuple[str, ...]) -> Dict[str, str]:
    return dict(zip(labelnames, key))


class _Instrument:
    """Shared bookkeeping: name, help text, declared label names."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        return _label_key(self.labelnames, labels)


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def _snapshot_values(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [{"labels": _labels_dict(self.labelnames, key),
                     "value": value}
                    for key, value in sorted(self._values.items())]


class Gauge(_Instrument):
    """A value that goes up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    _snapshot_values = Counter._snapshot_values


class _HistogramData:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets       # per-bin, not cumulative
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed upper-bound buckets; an observation lands in the first
    bucket whose bound is >= the value (the Prometheus ``le`` rule),
    or the implicit ``+Inf`` overflow bucket."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"{self.name}: need at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"{self.name}: duplicate bucket bounds")
        self.buckets = bounds
        self._data: Dict[Tuple[str, ...], _HistogramData] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, float(value))
        with self._lock:
            data = self._data.get(key)
            if data is None:
                data = self._data[key] = _HistogramData(
                    len(self.buckets) + 1)
            data.counts[index] += 1
            data.sum += float(value)
            data.count += 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            data = self._data.get(self._key(labels))
            return data.count if data else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            data = self._data.get(self._key(labels))
            return data.sum if data else 0.0

    def total_sum(self) -> float:
        with self._lock:
            return sum(d.sum for d in self._data.values())

    def _bucket_names(self) -> List[str]:
        return [_format_bound(b) for b in self.buckets] + ["+Inf"]

    def _snapshot_values(self) -> List[Dict[str, Any]]:
        names = self._bucket_names()
        with self._lock:
            return [{
                "labels": _labels_dict(self.labelnames, key),
                "buckets": dict(zip(names, data.counts)),
                "sum": data.sum,
                "count": data.count,
            } for key, data in sorted(self._data.items())]


def _format_bound(bound: float) -> str:
    if bound == _INF:
        return "+Inf"
    text = repr(bound)
    return text[:-2] if text.endswith(".0") else text


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"'
                     for name, value in sorted(labels.items()))
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Creates and owns instruments; one per telemetry context."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: "OrderedDict[str, _Instrument]" = OrderedDict()
        self._lock = threading.Lock()

    # -- instrument factories (get-or-create, name-keyed) -------------------

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                if existing.labelnames != tuple(labelnames):
                    raise TypeError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}")
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._instruments)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as one JSON-/pickle-friendly dict.

        Histogram bucket counts are per-bin (non-cumulative); the text
        exposition below is where the Prometheus cumulative rule is
        applied.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        out: Dict[str, Any] = {}
        for instrument in instruments:
            entry: Dict[str, Any] = {
                "type": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
                "values": instrument._snapshot_values(),
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = [_format_bound(b)
                                    for b in instrument.buckets]
            out[instrument.name] = entry
        return out

    def render_text(self) -> str:
        """Prometheus-style text exposition of the current state."""
        lines: List[str] = []
        snapshot = self.snapshot()
        for name, entry in snapshot.items():
            if entry["help"]:
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {entry['type']}")
            for value in entry["values"]:
                labels = value["labels"]
                if entry["type"] == "histogram":
                    cumulative = 0
                    for bucket in entry["buckets"] + ["+Inf"]:
                        cumulative += value["buckets"].get(bucket, 0)
                        bucket_labels = dict(labels, le=bucket)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_labels)}"
                            f" {cumulative}")
                    lines.append(f"{name}_sum{_format_labels(labels)} "
                                 f"{_format_number(value['sum'])}")
                    lines.append(f"{name}_count{_format_labels(labels)} "
                                 f"{value['count']}")
                else:
                    lines.append(f"{name}{_format_labels(labels)} "
                                 f"{_format_number(value['value'])}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- import -------------------------------------------------------------

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a ``snapshot()`` dict into this registry.

        Counters and histograms add; gauges take the incoming value.
        This is the cross-process aggregation path: workers snapshot
        their per-case registries, the parent merges.
        """
        for name, entry in snapshot.items():
            kind = entry.get("type")
            labelnames = tuple(entry.get("labelnames", ()))
            if kind == "counter":
                counter = self.counter(name, entry.get("help", ""),
                                       labelnames)
                for value in entry.get("values", ()):
                    counter.inc(value["value"], **value["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, entry.get("help", ""), labelnames)
                for value in entry.get("values", ()):
                    gauge.set(value["value"], **value["labels"])
            elif kind == "histogram":
                bounds = [float(b) for b in entry.get("buckets", ())
                          if b != "+Inf"]
                hist = self.histogram(name, entry.get("help", ""),
                                      labelnames, buckets=bounds)
                names = hist._bucket_names()
                for value in entry.get("values", ()):
                    key = hist._key(value["labels"])
                    with hist._lock:
                        data = hist._data.get(key)
                        if data is None:
                            data = hist._data[key] = _HistogramData(
                                len(hist.buckets) + 1)
                        for index, bucket in enumerate(names):
                            data.counts[index] += \
                                value["buckets"].get(bucket, 0)
                        data.sum += value.get("sum", 0.0)
                        data.count += value.get("count", 0)
            else:
                raise ValueError(f"cannot merge metric {name!r} of "
                                 f"unknown type {kind!r}")

    @classmethod
    def restore(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """A fresh registry holding exactly a snapshot's contents —
        e.g. to re-render exposition text from a saved JSONL stream."""
        registry = cls()
        registry.merge(snapshot)
        return registry


# -- quantile estimation over snapshot histograms ----------------------------

def aggregate_histogram(entry: Mapping[str, Any]
                        ) -> Tuple[List[float], List[int], int, float]:
    """Sum a snapshot histogram entry across its label sets.

    Returns ``(bounds, per_bin_counts, count, sum)`` where ``bounds``
    excludes the implicit ``+Inf`` overflow (whose count is the last
    entry of ``per_bin_counts``).  Input is one entry of
    :meth:`MetricsRegistry.snapshot` — the shape ``repro stats`` reads
    back out of a ``--log-json`` stream.
    """
    names = [b for b in entry.get("buckets", ()) if b != "+Inf"]
    bounds = [float(b) for b in names]
    counts = [0] * (len(bounds) + 1)
    total = 0
    value_sum = 0.0
    for value in entry.get("values", ()):
        per = value.get("buckets", {})
        for index, name in enumerate(names + ["+Inf"]):
            counts[index] += int(per.get(name, 0))
        total += int(value.get("count", 0))
        value_sum += float(value.get("sum", 0.0))
    return bounds, counts, total, value_sum


def histogram_quantile(q: float, bounds: Sequence[float],
                       counts: Sequence[int]) -> Optional[float]:
    """Estimate the ``q``-quantile from per-bin bucket counts.

    Linear interpolation inside the winning bucket (the PromQL
    ``histogram_quantile`` rule); an estimate landing in the ``+Inf``
    overflow clamps to the largest finite bound.  ``None`` when the
    histogram is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count:
            if index >= len(bounds):
                return bounds[-1] if bounds else None
            lower = bounds[index - 1] if index > 0 else 0.0
            return lower + (bounds[index] - lower) \
                * ((rank - previous) / count)
    return bounds[-1] if bounds else None


def quantiles_from_snapshot(snapshot: Mapping[str, Any], name: str,
                            quantiles: Sequence[float] = (0.5, 0.9, 0.99)
                            ) -> Optional[Dict[str, float]]:
    """Quantile summary of one histogram in a registry snapshot.

    Returns ``{"count": ..., "mean": ..., "p50": ..., ...}`` (keys
    from the requested quantiles), or ``None`` when the metric is
    absent, not a histogram, or empty — callers render the section only
    when there is something to say.
    """
    entry = snapshot.get(name)
    if not entry or entry.get("type") != "histogram":
        return None
    bounds, counts, total, value_sum = aggregate_histogram(entry)
    if total == 0:
        return None
    out: Dict[str, float] = {"count": float(total),
                             "mean": value_sum / total}
    for q in quantiles:
        estimate = histogram_quantile(q, bounds, counts)
        if estimate is not None:
            out[f"p{int(q * 100)}"] = estimate
    return out


# -- single-writer (per-case) instruments ------------------------------------

class BufferedCounter(Counter):
    """Counter with a lock-free write path for single-writer registries.

    Per-case registries live and die inside one worker thread, so the
    per-``inc`` lock and unknown-label check are pure tax; deltas
    accumulate in the plain ``_values`` dict (the flat per-case buffer)
    and flush once at case end through ``snapshot()``/``merge``.
    Snapshot readers still take the lock, so the cross-thread read at
    case end stays safe.
    """

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = tuple(str(labels.get(name, ""))
                    for name in self.labelnames)
        values = self._values
        values[key] = values.get(key, 0.0) + amount


class BufferedGauge(Gauge):
    """Gauge with lock-free writes (see :class:`BufferedCounter`)."""

    def set(self, value: float, **labels: Any) -> None:
        self._values[tuple(str(labels.get(name, ""))
                           for name in self.labelnames)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = tuple(str(labels.get(name, ""))
                    for name in self.labelnames)
        values = self._values
        values[key] = values.get(key, 0.0) + amount


class BufferedHistogram(Histogram):
    """Histogram with lock-free observes (see :class:`BufferedCounter`)."""

    def observe(self, value: float, **labels: Any) -> None:
        key = tuple(str(labels.get(name, ""))
                    for name in self.labelnames)
        data = self._data.get(key)
        if data is None:
            data = self._data[key] = _HistogramData(len(self.buckets) + 1)
        value = float(value)
        data.counts[bisect.bisect_left(self.buckets, value)] += 1
        data.sum += value
        data.count += 1


class BufferedMetricsRegistry(MetricsRegistry):
    """A per-case registry whose instruments batch single-writer style.

    Identical snapshot/merge/render shape to :class:`MetricsRegistry`;
    only the write paths differ.  The campaign engine hands one of
    these to each captured case so metric bookkeeping stays off the
    interpreter's hot path, then folds its ``snapshot()`` into the
    parent registry — that fold is the "flush once at case end".
    """

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(BufferedCounter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(BufferedGauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(BufferedHistogram, name, help,
                                   labelnames, buckets=buckets)


# -- the no-op default -------------------------------------------------------

class _NullInstrument:
    """Absorbs every instrument method at one no-op call each."""

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels: Any) -> int:
        return 0

    def sum(self, **labels: Any) -> float:
        return 0.0

    def total_sum(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled default: every factory returns the same no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name, help="", labelnames=()):    # type: ignore
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labelnames=()):      # type: ignore
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", labelnames=(),   # type: ignore
                  buckets=DEFAULT_BUCKETS):
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def render_text(self) -> str:
        return ""

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        pass


NULL_REGISTRY = NullRegistry()
