"""Fault scenarios: model validation, the XML language, generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scenario import (INJECT_EXHAUSTIVE, INJECT_NTH,
                                 INJECT_RANDOM, ArgModification, ErrorCode,
                                 FrameSpec, FunctionTrigger, Plan,
                                 error_codes_from_profile, exhaustive_plan,
                                 file_io_faults, io_faults, memory_faults,
                                 passthrough_plan, plan_from_xml,
                                 plan_to_xml, random_plan, socket_io_faults)
from repro.errors import ScenarioError

PAPER_EXAMPLE = """
<plan>
  <function name="readdir64" inject="5" retval="0"
            errno="EBADF" calloriginal="false" />
  <function name="readdir" inject="5" retval="0"
            errno="EBADF" calloriginal="false">
    <stacktrace>
      <frame>0xb824490</frame>
      <frame>refresh_files</frame>
    </stacktrace>
  </function>
  <function name="read" inject="20" calloriginal="true">
    <modify argument="3" op="sub" value="10" />
  </function>
</plan>
"""


class TestModel:
    def test_nth_requires_positive(self):
        with pytest.raises(ScenarioError):
            FunctionTrigger(function="f", mode=INJECT_NTH, nth=0)

    def test_random_requires_probability(self):
        with pytest.raises(ScenarioError):
            FunctionTrigger(function="f", mode=INJECT_RANDOM,
                            probability=0.0)

    def test_bad_mode(self):
        with pytest.raises(ScenarioError):
            FunctionTrigger(function="f", mode="sometimes")

    def test_modification_ops(self):
        assert ArgModification(1, "sub", 10).apply(30) == 20
        assert ArgModification(1, "add", 5).apply(30) == 35
        assert ArgModification(1, "set", 7).apply(30) == 7

    def test_modification_validation(self):
        with pytest.raises(ScenarioError):
            ArgModification(0, "sub", 1)
        with pytest.raises(ScenarioError):
            ArgModification(1, "xor", 1)

    def test_frame_spec_matches_address_or_name(self):
        assert FrameSpec("0xb824490").matches(0xB824490, None)
        assert not FrameSpec("0xb824490").matches(0xB824491, None)
        assert FrameSpec("refresh_files").matches(0, "refresh_files")
        assert not FrameSpec("refresh_files").matches(0, "other")

    def test_plan_functions_dedup_ordered(self):
        plan = Plan()
        for name in ("b", "a", "b"):
            plan.add(FunctionTrigger(function=name))
        assert plan.functions() == ["b", "a"]
        assert plan.trigger_count() == 3
        assert len(plan.triggers_for("b")) == 2


class TestXmlLanguage:
    def test_paper_example_parses(self):
        plan = plan_from_xml(PAPER_EXAMPLE)
        assert plan.trigger_count() == 3
        first = plan.triggers[0]
        assert first.function == "readdir64"
        assert first.mode == INJECT_NTH and first.nth == 5
        assert first.codes == (ErrorCode(0, "EBADF"),)
        assert first.calloriginal is False

        second = plan.triggers[1]
        assert [f.value for f in second.stacktrace] == \
            ["0xb824490", "refresh_files"]

        third = plan.triggers[2]
        assert third.calloriginal is True
        assert third.modifications == (ArgModification(3, "sub", 10),)
        assert third.codes == ()

    def test_roundtrip(self):
        plan = plan_from_xml(PAPER_EXAMPLE)
        again = plan_from_xml(plan_to_xml(plan))
        assert again.triggers == plan.triggers

    def test_multi_code_roundtrip(self):
        plan = Plan(seed=7)
        plan.add(FunctionTrigger(
            function="write", mode=INJECT_RANDOM, probability=0.25,
            codes=(ErrorCode(-1, "EIO"), ErrorCode(-1, "ENOSPC"))))
        again = plan_from_xml(plan_to_xml(plan))
        assert again.seed == 7
        assert again.triggers[0].probability == 0.25
        assert again.triggers[0].codes == plan.triggers[0].codes

    def test_exhaustive_mode_roundtrip(self):
        plan = Plan()
        plan.add(FunctionTrigger(function="close", mode=INJECT_EXHAUSTIVE,
                                 codes=(ErrorCode(-1, "EBADF"),)))
        again = plan_from_xml(plan_to_xml(plan))
        assert again.triggers[0].mode == INJECT_EXHAUSTIVE

    def test_bad_root(self):
        with pytest.raises(ScenarioError):
            plan_from_xml("<profile/>")

    def test_missing_name(self):
        with pytest.raises(ScenarioError):
            plan_from_xml('<plan><function inject="1"/></plan>')

    def test_bad_inject(self):
        with pytest.raises(ScenarioError):
            plan_from_xml('<plan><function name="f" inject="soon"/></plan>')


class TestGenerators:
    def test_exhaustive_covers_profiled_errors(self, libc_profiles_linux):
        plan = exhaustive_plan(libc_profiles_linux)
        by_name = {t.function: t for t in plan.triggers}
        assert "close" in by_name
        close = by_name["close"]
        assert close.mode == INJECT_EXHAUSTIVE
        errnos = {c.errno for c in close.codes if c.retval == -1}
        assert {"EBADF", "EIO", "EINTR"} <= errnos

    def test_exhaustive_skips_functions_without_errors(
            self, libc_profiles_linux):
        plan = exhaustive_plan(libc_profiles_linux)
        assert "memset" not in plan.functions()

    def test_random_plan_probability(self, libc_profiles_linux):
        plan = random_plan(libc_profiles_linux, probability=0.1, seed=3)
        assert plan.seed == 3
        assert all(t.mode == INJECT_RANDOM and t.probability == 0.1
                   for t in plan.triggers)

    def test_function_subset_restriction(self, libc_profiles_linux):
        plan = random_plan(libc_profiles_linux, probability=0.5,
                           functions=["read", "write"])
        assert set(plan.functions()) == {"read", "write"}

    def test_passthrough_plan_multiplicity(self):
        plan = passthrough_plan({"read": [ErrorCode(-1, "EIO")]},
                                per_function=3)
        assert plan.trigger_count() == 3
        assert all(t.calloriginal for t in plan.triggers)

    def test_error_codes_from_profile_maps_errno_names(
            self, libc_profile_linux):
        codes = error_codes_from_profile(libc_profile_linux.function("close"))
        assert ErrorCode(-1, "EBADF") in codes

    def test_presets_cover_their_families(self, libc_profile_linux):
        io_plan = file_io_faults(libc_profile_linux)
        assert "open" in io_plan.functions()
        assert "socket" not in io_plan.functions()

        mem_plan = memory_faults(libc_profile_linux)
        assert set(mem_plan.functions()) <= {"malloc", "calloc", "realloc"}
        assert "malloc" in mem_plan.functions()

        sock_plan = socket_io_faults(libc_profile_linux)
        assert "connect" in sock_plan.functions()

        pidgin_plan = io_faults(libc_profile_linux, probability=0.1, seed=1)
        assert "write" in pidgin_plan.functions()
        assert all(t.probability == 0.1 for t in pidgin_plan.triggers)


# -- property-based round-trip over the whole language ----------------------

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiles import ArgCondition
from repro.core.scenario import INJECT_NTH

_NAMES = st.text(alphabet="abcdefgh_", min_size=1, max_size=10)
_ERRNOS = st.sampled_from([None, "EIO", "EBADF", "ENOSPC", "EINTR"])
_RELOPS = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])

_code = st.builds(ErrorCode, st.integers(-100, 100), _ERRNOS)
_frame = st.one_of(
    st.builds(FrameSpec, _NAMES),
    st.integers(0, 0xFFFFFFF).map(lambda a: FrameSpec(hex(a))),
)
_mod = st.builds(ArgModification,
                 argument=st.integers(1, 6),
                 op=st.sampled_from(["add", "sub", "set"]),
                 value=st.integers(-1000, 1000))
_argcond = st.builds(ArgCondition,
                     arg_index=st.integers(0, 5),
                     relop=_RELOPS,
                     value=st.integers(-1000, 1000))


@st.composite
def _trigger(draw):
    mode = draw(st.sampled_from(["nth", "always", "random", "exhaustive"]))
    return FunctionTrigger(
        function=draw(_NAMES),
        mode=mode,
        nth=draw(st.integers(1, 50)) if mode == "nth" else 0,
        probability=(draw(st.floats(0.01, 1.0)) if mode == "random"
                     else 0.0),
        codes=tuple(draw(st.lists(_code, max_size=4))),
        calloriginal=draw(st.booleans()),
        stacktrace=tuple(draw(st.lists(_frame, max_size=3))),
        modifications=tuple(draw(st.lists(_mod, max_size=2))),
        argconds=tuple(draw(st.lists(_argcond, max_size=2))),
    )


@given(triggers=st.lists(_trigger(), max_size=6),
       seed=st.one_of(st.none(), st.integers(0, 1 << 31)))
@settings(max_examples=80, deadline=None)
def test_property_plan_language_roundtrip(triggers, seed):
    plan = Plan(seed=seed)
    for trigger in triggers:
        plan.add(trigger)
    again = plan_from_xml(plan_to_xml(plan))
    assert again.seed == plan.seed
    assert len(again.triggers) == len(plan.triggers)
    for orig, parsed in zip(plan.triggers, again.triggers):
        assert parsed.function == orig.function
        assert parsed.mode == orig.mode
        assert parsed.nth == orig.nth
        assert parsed.codes == orig.codes
        assert parsed.calloriginal == orig.calloriginal
        assert parsed.stacktrace == orig.stacktrace
        assert parsed.modifications == orig.modifications
        assert parsed.argconds == orig.argconds
        if orig.mode == "random":
            assert abs(parsed.probability - orig.probability) < 1e-12


class TestDerivedSeeds:
    """Unseeded random plans must still be reproducible: the default
    seed is derived from the plan's content and recorded in its XML."""

    def test_unseeded_random_plan_gets_concrete_seed(
            self, libc_profiles_linux):
        plan = random_plan(libc_profiles_linux, probability=0.1)
        assert isinstance(plan.seed, int)
        again = random_plan(libc_profiles_linux, probability=0.1)
        assert again.seed == plan.seed          # same content, same seed
        other = random_plan(libc_profiles_linux, probability=0.2)
        assert other.seed != plan.seed          # new content, new seed

    def test_explicit_seed_wins(self, libc_profiles_linux):
        plan = random_plan(libc_profiles_linux, probability=0.1, seed=7)
        assert plan.seed == 7

    def test_derived_seed_round_trips_through_xml(
            self, libc_profiles_linux):
        plan = random_plan(libc_profiles_linux, probability=0.1)
        again = plan_from_xml(plan_to_xml(plan))
        assert again.seed == plan.seed

    def test_random_presets_are_seeded(self, libc_profile_linux):
        plan = io_faults(libc_profile_linux, probability=0.1)
        assert isinstance(plan.seed, int)
        assert plan.seed == io_faults(libc_profile_linux,
                                      probability=0.1).seed
        # exhaustive presets use no RNG, so they stay unseeded
        assert file_io_faults(libc_profile_linux).seed is None

    def test_controller_test_event_carries_the_seed(
            self, libc_profiles_linux):
        from repro.core.controller import Controller
        from repro.core.scenario import random_plan as rp
        from repro.obs import MemorySink, Telemetry
        from repro.platform import LINUX_X86

        sink = MemorySink()
        plan = rp(libc_profiles_linux, probability=0.1,
                  functions=["close"])
        lfi = Controller(LINUX_X86, libc_profiles_linux, plan,
                         telemetry=Telemetry(sinks=[sink]))
        lfi.run_test(lambda: 0)
        (event,) = [e for e in sink.events if e.kind == "test"]
        assert event.fields["seed"] == plan.seed


class TestProbabilityErrors:
    """The builder and the XML parser must agree: a random trigger
    without a usable probability is a ScenarioError naming the
    offending function, whichever path built it."""

    def test_builder_names_the_function(self):
        with pytest.raises(ScenarioError,
                           match="random trigger for 'fsync'"):
            FunctionTrigger(function="fsync", mode=INJECT_RANDOM,
                            probability=0.0)

    def test_xml_missing_probability_names_the_function(self):
        with pytest.raises(ScenarioError,
                           match="random trigger for 'fsync'.*probability"):
            plan_from_xml(
                '<plan><function name="fsync" inject="random"/></plan>')

    def test_xml_zero_probability_names_the_function(self):
        with pytest.raises(ScenarioError,
                           match="random trigger for 'fsync'"):
            plan_from_xml('<plan><function name="fsync" inject="random"'
                          ' probability="0.0"/></plan>')

    def test_xml_unparsable_probability_names_the_function(self):
        with pytest.raises(ScenarioError,
                           match="random trigger for 'fsync'.*'lots'"):
            plan_from_xml('<plan><function name="fsync" inject="random"'
                          ' probability="lots"/></plan>')

    def test_nth_error_names_the_function_too(self):
        with pytest.raises(ScenarioError,
                           match="nth-call trigger for 'read'"):
            FunctionTrigger(function="read", mode=INJECT_NTH, nth=0)
