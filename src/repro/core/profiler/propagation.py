"""Reverse constant propagation over the product graph G' (§3.1).

For every write to the ABI return location that reaches a ``ret``, the
analyzer searches *backwards* through ``G'(V × locations)``: nodes are
(basic block, location) pairs, expanded on demand, exactly as the paper
describes.  Constants reaching the return location become error-return
candidates.  Three writer classes exist:

* direct constants (``mov eax, imm`` / ``or eax, -1`` / ``xor eax, eax``),
* dependent functions — direct calls recurse into the callee (possibly in
  another library, via the import table), and "we consider all of the
  dependent function's return values to be propagated",
* system calls — ``int 0x80`` contributes the error constants found by
  statically analyzing the kernel image's handler for that syscall number.

Branch-edge constraints (``cmp loc, imm`` + ``jcc``) prune constants that
cannot flow along an edge; this is what keeps a syscall wrapper's kernel
error constants from leaking into its *success* path, while the
``or eax, 0xffffffff`` on the error path still yields -1.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...binfmt import SharedObject
from ...binfmt.image import KIND_KERNEL
from ...errors import ProfilerError
from ...isa import Abi, Imm, ImportSlot, Mem, Reg, Rel, abi_for
from ...isa.instructions import Decoded
from ...platform import Platform
from ..profiles import ArgCondition, SideEffect, merge_side_effects
from .cfg import BasicBlock, Cfg, CfgStats, build_cfg

#: Cap on recursion depth through dependent functions; §6.2 reports the
#: hop count "always 3 or less" in practice, we allow slack.
MAX_HOPS = 12

#: Cap on distinct G' nodes visited per return-location walk.
MAX_NODES = 20_000

Location = Tuple[str, object]          # ("reg", name) | ("slot", disp)
Transform = Tuple[str, int]            # (op, imm)
Constraint = Tuple[str, int]           # (relop, imm) on the final value

_NEGATE_REL = {"==": "!=", "!=": "==", "<": ">=", ">=": "<",
               "<=": ">", ">": "<="}
_TAKEN_REL = {"jz": "==", "jnz": "!=", "jl": "<", "js": "<",
              "jge": ">=", "jns": ">=", "jle": "<=", "jg": ">"}


def _satisfies(value: int, constraints: Sequence[Constraint]) -> bool:
    for rel, imm in constraints:
        ok = {"==": value == imm, "!=": value != imm,
              "<": value < imm, "<=": value <= imm,
              ">": value > imm, ">=": value >= imm}[rel]
        if not ok:
            return False
    return True


_MASK32 = 0xFFFFFFFF


def _sgn32(value: int) -> int:
    """Reinterpret a 32-bit pattern as signed, as the emulator does."""
    value &= _MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def _apply_transforms(value: int, transforms: Sequence[Transform]) -> int:
    # transforms are collected innermost-last during the backward scan;
    # execution order is the reverse (tuples reverse directly — no copy)
    for op, imm in reversed(transforms):
        if op == "add":
            value = value + imm
        elif op == "sub":
            value = value - imm
        elif op == "neg":
            value = -value
        elif op == "imul":
            value = value * imm
        elif op == "shl":
            # Cpu.step shifts the 32-bit pattern and masks the result
            value = _sgn32((value & _MASK32) << (imm & 31))
        elif op == "shr":
            # logical right shift of the 32-bit pattern (-1 >> 1 is
            # 0x7fffffff in the emulator, not -1)
            value = _sgn32((value & _MASK32) >> (imm & 31))
    return value


@dataclass(frozen=True)
class ConstEntry:
    """One constant that can reach the return location."""

    value: int
    effects: Tuple[SideEffect, ...]
    via: str            # direct | callee | kernel
    hops: int
    path: Tuple[int, ...] = ()     # block starts in *this* function
    conditions: Tuple[ArgCondition, ...] = ()


@dataclass
class FunctionAnalysis:
    """Propagation result for one function."""

    entries: List[ConstEntry] = field(default_factory=list)
    indirect_influence: bool = False
    truncated: bool = False
    max_hops: int = 0

    def const_values(self) -> List[int]:
        return sorted({e.value for e in self.entries})


class AnalysisContext:
    """Shared state for profiling a set of libraries on one platform.

    ``libraries`` maps sonames to images (the closure ``ldd`` found);
    ``kernel_image`` is the platform's kernel (§3.1 kernel analysis).
    """

    def __init__(self, platform: Platform,
                 libraries: Dict[str, SharedObject],
                 kernel_image: Optional[SharedObject] = None,
                 *, use_edge_constraints: bool = True,
                 infer_arg_conditions: bool = False) -> None:
        self.platform = platform
        self.abi: Abi = abi_for(platform.machine)
        self.libraries = dict(libraries)
        self.kernel_image = kernel_image
        #: path-sensitivity on cmp/jcc guards; disable for ablation only
        self.use_edge_constraints = use_edge_constraints
        #: the §3.1 future-work extension (see ArgCondition)
        self.infer_arg_conditions = infer_arg_conditions
        self.stats = CfgStats()
        self._cfgs: Dict[Tuple[str, int], Cfg] = {}
        self._memo: Dict[Tuple[str, int], FunctionAnalysis] = {}
        # cycle detection is per recursive walk, hence per thread: a
        # parallel profiler analyzing export A on one thread must not
        # make export B's walk on another thread think it is recursing
        self._local = threading.local()
        self._kernel_consts: Dict[int, Tuple[int, ...]] = {}
        self._export_index: Dict[str, Tuple[str, int]] = {}
        for soname, image in self.libraries.items():
            for sym in image.exports:
                self._export_index.setdefault(sym.name, (soname, sym.offset))

    @property
    def _in_progress(self) -> Set[Tuple[str, int]]:
        """This thread's active-walk set (cycle detection)."""
        active = getattr(self._local, "in_progress", None)
        if active is None:
            active = self._local.in_progress = set()
        return active

    # -- kernel image ------------------------------------------------------

    def kernel_error_consts(self, nr: int) -> Tuple[int, ...]:
        """Constants the kernel's handler for syscall ``nr`` can return."""
        if nr in self._kernel_consts:
            return self._kernel_consts[nr]
        consts: Tuple[int, ...] = ()
        image = self.kernel_image
        if image is not None and image.kind == KIND_KERNEL:
            offset = dict(image.syscall_table).get(nr)
            if offset is not None:
                analysis = self._analyze_kernel_handler(image, offset)
                consts = tuple(analysis.const_values())
        self._kernel_consts[nr] = consts
        return consts

    def _analyze_kernel_handler(self, image: SharedObject,
                                offset: int) -> FunctionAnalysis:
        walker = _Walker(self, image, offset, hops=0)
        return walker.analyze()

    # -- function analysis ---------------------------------------------------

    def cfg(self, image: SharedObject, entry: int) -> Cfg:
        key = (image.soname, entry)
        cfg = self._cfgs.get(key)
        if cfg is None:
            cfg = build_cfg(image, entry, self.abi, stats=self.stats)
            self._cfgs[key] = cfg
        return cfg

    def analyze_function(self, soname: str, entry: int,
                         hops: int = 0) -> FunctionAnalysis:
        key = (soname, entry)
        memoized = self._memo.get(key)
        if memoized is not None:
            return memoized
        in_progress = self._in_progress
        if key in in_progress or hops > MAX_HOPS:
            # recursion cycle or depth cap: contribute nothing
            return FunctionAnalysis(truncated=True)
        image = self.libraries.get(soname)
        if image is None:
            return FunctionAnalysis(truncated=True)
        in_progress.add(key)
        try:
            analysis = _Walker(self, image, entry, hops).analyze()
        finally:
            in_progress.discard(key)
        self._attach_side_effects(image, entry, analysis)
        self._memo[key] = analysis
        return analysis

    def _attach_side_effects(self, image: SharedObject, entry: int,
                             analysis: FunctionAnalysis) -> None:
        """Resolve §3.2 side effects for locally-discovered constants.

        Callee-propagated entries already carry the callee's effects;
        direct and kernel-derived constants are scanned along their own
        block chain in this function.
        """
        from .sideeffects import SideEffectScanner

        scanner = None
        resolved: List[ConstEntry] = []
        for item in analysis.entries:
            if item.effects or not item.path:
                resolved.append(item)
                continue
            if scanner is None:
                scanner = SideEffectScanner(self, image,
                                            self.cfg(image, entry))
            effects = scanner.effects_for_path(item.path)
            resolved.append(ConstEntry(item.value, effects, item.via,
                                       item.hops, item.path,
                                       item.conditions))
        analysis.entries = resolved

    def resolve_import(self, image: SharedObject,
                       slot: int) -> Optional[Tuple[str, int]]:
        try:
            symbol = image.imports[slot]
        except IndexError:
            return None
        return self._export_index.get(symbol)


class _Walker:
    """One function's backward walk over G'."""

    def __init__(self, ctx: AnalysisContext, image: SharedObject,
                 entry: int, hops: int) -> None:
        self.ctx = ctx
        self.image = image
        self.entry = entry
        self.hops = hops
        self.abi = ctx.abi
        self.cfg = ctx.cfg(image, entry)
        self.result = FunctionAnalysis()
        self.result.max_hops = hops
        self._visited: Set[Tuple[int, Location]] = set()
        self._nodes = 0

    def analyze(self) -> FunctionAnalysis:
        ret_loc: Location = ("reg", self.abi.return_register)
        if self.cfg.incomplete:
            self.result.indirect_influence = True
        for block in self.cfg.exit_blocks():
            self._visited.clear()
            self._scan(block, len(block.instructions) - 1, ret_loc,
                       (), (), (block.start,), ())
        # deduplicate by value; a condition survives only if EVERY path
        # that produces the value satisfies it
        dedup: Dict[int, ConstEntry] = {}
        for entry in self.result.entries:
            old = dedup.get(entry.value)
            if old is None:
                dedup[entry.value] = entry
                continue
            conditions = tuple(sorted(
                set(old.conditions) & set(entry.conditions),
                key=lambda c: (c.arg_index, c.relop, c.value)))
            if not old.effects and entry.effects:
                base = entry
            elif old.effects and entry.effects and old.path != entry.path:
                merged = merge_side_effects(old.effects + entry.effects)
                base = ConstEntry(entry.value, merged, old.via,
                                  min(old.hops, entry.hops), old.path)
            else:
                base = old
            dedup[entry.value] = ConstEntry(
                base.value, base.effects, base.via, base.hops, base.path,
                conditions)
        self.result.entries = sorted(dedup.values(), key=lambda e: e.value)
        return self.result

    # -- the backward scan ---------------------------------------------------

    def _written_location(self, insn) -> Optional[Location]:
        """Location written by a mov-like first operand, if trackable."""
        dst = insn.operands[0]
        if isinstance(dst, Reg):
            return ("reg", dst.name)
        if isinstance(dst, Mem) and dst.base == self.abi.frame_pointer \
                and dst.index is None and dst.segment is None:
            return ("slot", dst.disp)
        return None

    def _emit(self, value: int, transforms: Tuple[Transform, ...],
              constraints: Tuple[Constraint, ...], via: str, hops: int,
              path: Tuple[int, ...],
              conditions: Tuple[ArgCondition, ...] = (),
              effects: Tuple[SideEffect, ...] = ()) -> None:
        final = _apply_transforms(value, transforms)
        if not _satisfies(final, constraints):
            return
        if self.ctx.infer_arg_conditions and path:
            # guards *dominating* the block where the constant was
            # assigned are part of the condition too (the reverse walk
            # only crosses edges between the writer and the exit)
            conditions = conditions + self._entry_conditions(path[-1])
        self.result.entries.append(
            ConstEntry(final, effects, via, hops, path, conditions))
        self.result.max_hops = max(self.result.max_hops, hops)

    def _entry_conditions(self, block_start: int,
                          depth: int = 6) -> Tuple[ArgCondition, ...]:
        """Argument guards that dominate entry to ``block_start``.

        Walks up single-predecessor chains; at merge points only
        conditions agreed on by *every* incoming edge survive.
        """
        conditions: List[ArgCondition] = []
        cursor = block_start
        for _ in range(depth):
            preds = self.cfg.predecessors(cursor)
            if not preds:
                break
            edge_sets = [
                set(self._edge_arg_condition(self.cfg.blocks[p], cursor))
                for p in preds]
            for cond in set.intersection(*edge_sets):
                if cond not in conditions:
                    conditions.append(cond)
            if len(preds) != 1:
                break
            cursor = preds[0]
        return tuple(conditions)

    def _scan(self, block: BasicBlock, start_index: int, loc: Location,
              transforms: Tuple[Transform, ...],
              constraints: Tuple[Constraint, ...],
              path: Tuple[int, ...],
              conditions: Tuple[ArgCondition, ...] = ()) -> None:
        self._nodes += 1
        if self._nodes > MAX_NODES:
            self.result.truncated = True
            return
        instructions = block.instructions
        i = start_index
        while i >= 0:
            decoded = instructions[i]
            insn = decoded.insn
            m = insn.mnemonic
            if m == "mov":
                written = self._written_location(insn)
                if written == loc:
                    src = insn.operands[1]
                    if isinstance(src, Imm):
                        self._emit(src.value, transforms, constraints,
                                   "direct", self.hops, path, conditions)
                        return
                    if isinstance(src, Reg):
                        loc = ("reg", src.name)
                        i -= 1
                        continue
                    if isinstance(src, Mem) \
                            and src.base == self.abi.frame_pointer \
                            and src.index is None and src.segment is None:
                        loc = ("slot", src.disp)
                        i -= 1
                        continue
                    return  # untracked memory load
            elif m in ("add", "sub", "imul", "shl", "shr"):
                if self._written_location(insn) == loc:
                    src = insn.operands[1]
                    if isinstance(src, Imm):
                        transforms = transforms + ((m, src.value),)
                        i -= 1
                        continue
                    return
            elif m == "or":
                if self._written_location(insn) == loc:
                    src = insn.operands[1]
                    if isinstance(src, Imm) and src.value == -1:
                        # or reg, 0xffffffff: the -1 idiom
                        self._emit(-1, transforms, constraints,
                                   "direct", self.hops, path, conditions)
                    return
            elif m in ("xor", "and", "not"):
                if self._written_location(insn) == loc:
                    if m == "xor" and insn.operands[1] == insn.operands[0]:
                        self._emit(0, transforms, constraints,
                                   "direct", self.hops, path, conditions)
                    return
            elif m == "neg":
                if self._written_location(insn) == loc:
                    transforms = transforms + (("neg", 0),)
                    i -= 1
                    continue
            elif m == "lea":
                if self._written_location(insn) == loc:
                    return  # addresses are not error constants
            elif m in ("inc", "dec"):
                if self._written_location(insn) == loc:
                    transforms = transforms + (("add", 1 if m == "inc"
                                                else -1),)
                    i -= 1
                    continue
            elif m == "pop":
                if self._written_location(insn) == loc:
                    return  # stack-popped temporaries are not propagated
            elif m == "call":
                if self._handle_call(decoded, loc, transforms, constraints,
                                     path, conditions):
                    return
            elif m == "int":
                if loc == ("reg", self.abi.return_register):
                    self._handle_syscall(instructions, i, transforms,
                                         constraints, path, conditions)
                    return
            elif m == "leave":
                if loc[0] == "reg" and loc[1] in (self.abi.stack_pointer,
                                                  self.abi.frame_pointer):
                    return
            i -= 1

        # reached the block head: expand predecessors in G'
        for pred_start in self.cfg.predecessors(block.start):
            key = (pred_start, loc)
            if key in self._visited:
                continue
            self._visited.add(key)
            pred = self.cfg.blocks[pred_start]
            new_constraints = constraints
            if self.ctx.use_edge_constraints:
                new_constraints = constraints + self._edge_constraint(
                    pred, block.start, loc)
            new_conditions = conditions
            if self.ctx.infer_arg_conditions:
                new_conditions = conditions + self._edge_arg_condition(
                    pred, block.start)
            self._scan(pred, len(pred.instructions) - 1, loc,
                       transforms, new_constraints, path + (pred_start,),
                       new_conditions)

    def _edge_constraint(self, pred: BasicBlock, succ_start: int,
                         loc: Location) -> Tuple[Constraint, ...]:
        """cmp loc, imm + jcc edges constrain the propagated value."""
        term = pred.terminator.insn
        rel = _TAKEN_REL.get(term.mnemonic)
        if rel is None or len(pred.instructions) < 2:
            return ()
        cmp_insn = pred.instructions[-2].insn
        if cmp_insn.mnemonic != "cmp":
            return ()
        lhs, rhs = cmp_insn.operands
        if not isinstance(rhs, Imm):
            return ()
        cmp_loc: Optional[Location] = None
        if isinstance(lhs, Reg):
            cmp_loc = ("reg", lhs.name)
        if cmp_loc != loc:
            return ()
        taken_target = pred.terminator.branch_target()
        if succ_start == taken_target:
            return ((rel, rhs.value),)
        return ((_NEGATE_REL[rel], rhs.value),)

    def _edge_arg_condition(self, pred: BasicBlock,
                            succ_start: int) -> Tuple[ArgCondition, ...]:
        """Parameter predicates on cmp/jcc edges (the §3.1 extension).

        Matches the canonical guard shape: the compared register was
        loaded from a parameter home slot earlier in the same block.
        """
        term = pred.terminator.insn
        rel = _TAKEN_REL.get(term.mnemonic)
        if rel is None or len(pred.instructions) < 2:
            return ()
        cmp_insn = pred.instructions[-2].insn
        if cmp_insn.mnemonic != "cmp":
            return ()
        lhs, rhs = cmp_insn.operands
        if not isinstance(rhs, Imm) or not isinstance(lhs, Reg):
            return ()
        arg_index = self._param_loaded_into(pred, lhs.name)
        if arg_index is None:
            return ()
        taken = succ_start == pred.terminator.branch_target()
        relop = rel if taken else _NEGATE_REL[rel]
        return (ArgCondition(arg_index, relop, rhs.value),)

    def _param_loaded_into(self, block: BasicBlock,
                           reg_name: str) -> Optional[int]:
        """Index of the parameter whose home slot last fed ``reg_name``."""
        abi = self.abi
        for decoded in reversed(block.instructions[:-2]):
            insn = decoded.insn
            if insn.mnemonic != "mov" or not insn.operands:
                continue
            dst = insn.operands[0]
            if not isinstance(dst, Reg) or dst.name != reg_name:
                continue
            src = insn.operands[1]
            if isinstance(src, Mem) and src.base == abi.frame_pointer                     and src.index is None and src.segment is None:
                if abi.arg_registers:
                    if -4 * len(abi.arg_registers) <= src.disp <= -4                             and src.disp % 4 == 0:
                        return (-src.disp // 4) - 1
                elif src.disp >= 8 and src.disp % 4 == 0:
                    return (src.disp - 8) // 4
            return None
        return None

    def _handle_call(self, decoded: Decoded, loc: Location,
                     transforms: Tuple[Transform, ...],
                     constraints: Tuple[Constraint, ...],
                     path: Tuple[int, ...],
                     conditions: Tuple[ArgCondition, ...] = ()) -> bool:
        """Returns True when the call terminates this walk."""
        op = decoded.insn.operands[0]
        if isinstance(op, Rel) and decoded.branch_target() == decoded.end:
            return False        # call/pop PIC thunk: not a real call
        if loc[0] == "slot":
            return False        # calls never write frame slots
        if loc != ("reg", self.abi.return_register):
            return True         # scratch registers die across calls
        if isinstance(op, Reg):
            self.result.indirect_influence = True
            return True
        if isinstance(op, Rel):
            callee = (self.image.soname, decoded.branch_target())
        else:
            assert isinstance(op, ImportSlot)
            resolved = self.ctx.resolve_import(self.image, op.slot)
            if resolved is None:
                self.result.truncated = True
                return True
            callee = resolved
        sub = self.ctx.analyze_function(callee[0], callee[1], self.hops + 1)
        if sub.indirect_influence:
            self.result.indirect_influence = True
        if sub.truncated:
            self.result.truncated = True
        for entry in sub.entries:
            self._emit(entry.value, transforms, constraints, "callee",
                       entry.hops + 1, path, conditions,
                       effects=entry.effects)
        return True

    def _handle_syscall(self, instructions: List[Decoded], index: int,
                        transforms: Tuple[Transform, ...],
                        constraints: Tuple[Constraint, ...],
                        path: Tuple[int, ...],
                        conditions: Tuple[ArgCondition, ...] = ()) -> None:
        nr = self._syscall_number(instructions, index)
        if nr is None:
            self.result.truncated = True
            return
        for value in self.ctx.kernel_error_consts(nr):
            self._emit(value, transforms, constraints, "kernel",
                       self.hops + 1, path, conditions)

    def _syscall_number(self, instructions: List[Decoded],
                        index: int) -> Optional[int]:
        nr_reg = ("reg", self.abi.syscall_number_register)
        for j in range(index - 1, -1, -1):
            insn = instructions[j].insn
            if insn.mnemonic == "mov" \
                    and self._written_location(insn) == nr_reg:
                src = insn.operands[1]
                return src.value if isinstance(src, Imm) else None
        return None
