"""Fault-scenario (faultload) model (§4).

A scenario is a set of <trigger, fault> tuples.  Triggers fire on call
counts, probabilities, or stack-trace matches; faults are an error return
value plus errno, optional argument modifications, and whether the
original function still runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ...errors import ScenarioError
from ..profiles import ArgCondition

INJECT_NTH = "nth"              # fire on the n-th call only
INJECT_ALWAYS = "always"        # fire on every call
INJECT_RANDOM = "random"        # fire with probability p per call
INJECT_EXHAUSTIVE = "exhaustive"  # fire every call, rotating error codes


@dataclass(frozen=True)
class ErrorCode:
    """One injectable fault: return value + errno symbol (or None)."""

    retval: int
    errno: Optional[str] = None


@dataclass(frozen=True)
class ArgModification:
    """Modify an argument before passing the call on (§4's third example).

    ``argument`` is 1-based, as in the paper's XML.
    """

    argument: int
    op: str            # add | sub | set
    value: int

    def __post_init__(self) -> None:
        if self.op not in ("add", "sub", "set"):
            raise ScenarioError(f"bad modify op {self.op!r}")
        if self.argument < 1:
            raise ScenarioError("modify arguments are 1-based")

    def apply(self, old: int) -> int:
        if self.op == "add":
            return old + self.value
        if self.op == "sub":
            return old - self.value
        return self.value


@dataclass(frozen=True)
class FrameSpec:
    """One stack-trace frame condition: hex address or function name."""

    value: str

    def matches(self, return_addr: int, function: Optional[str]) -> bool:
        text = self.value.strip()
        if text.lower().startswith("0x"):
            try:
                return int(text, 16) == return_addr
            except ValueError:
                return False
        return function == text


@dataclass(frozen=True)
class FunctionTrigger:
    """One <function .../> element of a plan."""

    function: str
    mode: str = INJECT_ALWAYS
    nth: int = 0                     # for INJECT_NTH
    probability: float = 0.0         # for INJECT_RANDOM
    codes: Tuple[ErrorCode, ...] = ()
    calloriginal: bool = False
    stacktrace: Tuple[FrameSpec, ...] = ()
    modifications: Tuple[ArgModification, ...] = ()
    #: fire only when the live call arguments satisfy these predicates
    #: (the arg-condition extension; indices are 0-based here)
    argconds: Tuple[ArgCondition, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in (INJECT_NTH, INJECT_ALWAYS, INJECT_RANDOM,
                             INJECT_EXHAUSTIVE):
            raise ScenarioError(f"bad inject mode {self.mode!r}")
        if self.mode == INJECT_NTH and self.nth < 1:
            raise ScenarioError(f"nth-call trigger for {self.function!r} "
                                f"needs a positive count")
        if self.mode == INJECT_RANDOM \
                and not (0.0 < self.probability <= 1.0):
            raise ScenarioError(f"random trigger for {self.function!r} "
                                f"needs 0 < probability <= 1")

    def wants_injection(self) -> bool:
        """Whether firing injects a fault (vs. only modifying arguments)."""
        return bool(self.codes) or not self.calloriginal


@dataclass
class Plan:
    """A fault-injection scenario: ordered triggers, optional RNG seed."""

    triggers: List[FunctionTrigger] = field(default_factory=list)
    seed: Optional[int] = None
    name: str = "scenario"

    def functions(self) -> List[str]:
        seen: List[str] = []
        for trigger in self.triggers:
            if trigger.function not in seen:
                seen.append(trigger.function)
        return seen

    def triggers_for(self, function: str) -> List[FunctionTrigger]:
        return [t for t in self.triggers if t.function == function]

    def trigger_count(self) -> int:
        return len(self.triggers)

    def add(self, trigger: FunctionTrigger) -> "Plan":
        self.triggers.append(trigger)
        return self
