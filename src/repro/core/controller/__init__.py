"""The LFI controller: stubs, triggers, injection, logging, replay."""

from .controller import (REPORT_SCHEMA, STATUS_CRASHED, STATUS_ERROR_EXIT,
                         STATUS_HUNG, STATUS_NORMAL, STATUS_SIGABRT,
                         STATUS_SIGSEGV, Controller, TestOutcome, TestReport)
from .injector import Injector
from .logbook import InjectionRecord, Logbook
from .replay import build_replay_plan, replay_script
from .stubs import EVAL_SYMBOL, SHIM_SONAME, generate_c_source, synthesize_shim
from .triggers import Decision, TriggerEngine

__all__ = [
    "Controller", "TestOutcome", "TestReport",
    "STATUS_NORMAL", "STATUS_ERROR_EXIT", "STATUS_SIGSEGV", "STATUS_SIGABRT",
    "STATUS_HUNG", "STATUS_CRASHED", "REPORT_SCHEMA",
    "Injector", "TriggerEngine", "Decision",
    "Logbook", "InjectionRecord",
    "build_replay_plan", "replay_script",
    "synthesize_shim", "generate_c_source", "EVAL_SYMBOL", "SHIM_SONAME",
]
