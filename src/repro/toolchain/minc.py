"""MinC — the miniature C-like language libraries are written in.

The corpus generator and the synthetic libc are authored as MinC ASTs and
*compiled to SELF machine code*.  This is the crucial trick that lets us
evaluate the LFI profiler honestly: ground truth about error returns is
known at the AST level, but the profiler only ever sees the compiled
bytes, exactly as LFI only sees library binaries (§3.1).

The language is deliberately small: 32-bit integers everywhere, locals,
parameters, module globals, calls (direct, imported, indirect), system
calls, errno assignment, output-parameter stores, ``if``/``while``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """A 32-bit integer literal."""

    value: int


@dataclass(frozen=True)
class Param:
    """The ``index``-th function parameter (0-based)."""

    index: int


@dataclass(frozen=True)
class Local:
    """A named local variable."""

    name: str


@dataclass(frozen=True)
class Global:
    """Read a module global variable."""

    name: str


@dataclass(frozen=True)
class Deref:
    """Load a 32-bit word through a pointer expression."""

    addr: "Expr"


@dataclass(frozen=True)
class Neg:
    """Arithmetic negation."""

    operand: "Expr"


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic: ``+ - * & | ^ << >>``."""

    op: str
    lhs: "Expr"
    rhs: "Expr"

    _OPS = {"+", "-", "*", "&", "|", "^", "<<", ">>"}

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"bad binary operator {self.op!r}")


@dataclass(frozen=True)
class Call:
    """Direct call to a function by name.

    The linker decides whether the callee is internal (direct ``call``)
    or lives in another library (``call`` through a PLT import slot).
    """

    name: str
    args: Tuple["Expr", ...] = ()


@dataclass(frozen=True)
class IndirectCall:
    """Call through a function pointer — the §3.1 accuracy hazard."""

    target: "Expr"
    args: Tuple["Expr", ...] = ()


@dataclass(frozen=True)
class Syscall:
    """Invoke the kernel: ``syscall(nr, args...)`` via ``int 0x80``."""

    nr: int
    args: Tuple["Expr", ...] = ()


@dataclass(frozen=True)
class FuncAddr:
    """Address of an internal function (for building indirect calls)."""

    name: str


@dataclass(frozen=True)
class ErrnoRef:
    """Read the module's errno channel (e.g. for __errno_location-style
    accessors that applications call after a failed library call)."""


Expr = Union[Const, Param, Local, Global, Deref, Neg, BinOp, Call,
             IndirectCall, Syscall, FuncAddr, ErrnoRef]


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Cond:
    """A comparison used by ``if``/``while``: ``== != < <= > >=``."""

    op: str
    lhs: Expr
    rhs: Expr

    _OPS = {"==", "!=", "<", "<=", ">", ">="}

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"bad comparison operator {self.op!r}")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Return:
    """Return from the function, optionally with a value."""

    value: Optional[Expr] = None


@dataclass(frozen=True)
class Assign:
    """``local = expr``; declares the local on first use."""

    name: str
    value: Expr


@dataclass(frozen=True)
class SetGlobal:
    """``module_global = expr``."""

    name: str
    value: Expr


@dataclass(frozen=True)
class SetErrno:
    """Store into the module's errno channel (TLS or global, per platform).

    Compiles to the §3.2 position-independent sequence the side-effect
    analyzer must recognize.
    """

    value: Expr


@dataclass(frozen=True)
class StoreParam:
    """``*(param index) = expr`` — an output-argument side effect."""

    index: int
    value: Expr


@dataclass(frozen=True)
class StoreMem:
    """``*(addr) = value`` for arbitrary pointer expressions."""

    addr: Expr
    value: Expr


@dataclass(frozen=True)
class If:
    cond: Cond
    then: Tuple["Stmt", ...]
    orelse: Tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class While:
    cond: Cond
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class ExprStmt:
    """Evaluate an expression for its effects (typically a call)."""

    value: Expr


@dataclass(frozen=True)
class SyscallWrapper:
    """The canonical libc syscall-wrapper body (§3.2's GNU libc example).

    Passes all of the function's parameters to kernel syscall ``nr``; on a
    negative kernel return it stores the negated result into errno and
    returns ``error_retval`` (-1 for scalar wrappers like ``close``, 0 for
    pointer-returning wrappers like ``malloc``); otherwise it returns the
    kernel's value.  Compiles to the exact instruction shape shown in the
    paper (xor/sub to negate, PIC+TLS store, ``or eax, 0xffffffff``).
    """

    nr: int
    error_retval: int = -1
    #: Override the syscall arguments (default: the function's parameters
    #: in order).  Lets e.g. malloc forward ``mmap(0, size)``.
    args: Optional[Tuple["Expr", ...]] = None


@dataclass(frozen=True)
class ComputedGoto:
    """An indirect branch to one of several labels (jump-table style).

    Used sparingly by the corpus to reproduce the §3.1 indirect-branch
    population (0.13% of branches) that makes CFGs incomplete.
    ``selector`` picks an entry in ``targets`` (statement indices are
    label names created by the code generator); out-of-range selectors
    take the last target.
    """

    selector: Expr
    targets: Tuple[Tuple["Stmt", ...], ...]


Stmt = Union[Return, Assign, SetGlobal, SetErrno, StoreParam, StoreMem, If,
             While, ExprStmt, SyscallWrapper, ComputedGoto]


# ---------------------------------------------------------------------------
# Functions and modules
# ---------------------------------------------------------------------------

RET_VOID = "void"
RET_SCALAR = "scalar"
RET_POINTER = "pointer"
RETURN_TYPES = (RET_VOID, RET_SCALAR, RET_POINTER)


@dataclass(frozen=True)
class FunctionDef:
    """One MinC function.

    ``returns`` is the *declared* return type; it never reaches the binary
    (like C, types live in headers) but the corpus keeps it for the
    Table 1 analysis, which combines header information with binary
    side-effect analysis (§3.2).
    """

    name: str
    nparams: int
    body: Tuple[Stmt, ...]
    export: bool = True
    returns: str = RET_SCALAR

    def __post_init__(self) -> None:
        if self.returns not in RETURN_TYPES:
            raise ValueError(f"bad return type {self.returns!r}")


@dataclass(frozen=True)
class ModuleDef:
    """A MinC translation unit destined to become one shared object."""

    soname: str
    functions: Tuple[FunctionDef, ...]
    needed: Tuple[str, ...] = ()
    globals_: Tuple[str, ...] = ()       # module global variable names
    has_errno: bool = True               # allocate an errno channel

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"{self.soname} has no function {name!r}")


def body(*stmts: Stmt) -> Tuple[Stmt, ...]:
    """Terse tuple constructor for statement lists."""
    return tuple(stmts)


def args(*exprs: Expr) -> Tuple[Expr, ...]:
    """Terse tuple constructor for argument lists."""
    return tuple(exprs)
