"""Differential testing: compiled guest code vs. a reference interpreter.

Hypothesis generates random MinC functions; each is (a) evaluated by a
direct Python interpreter over the AST and (b) compiled, loaded and run
on the VM.  Any divergence is a bug in the code generator, assembler,
encoder, loader or CPU — this is the deepest correctness net over the
whole substrate stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Kernel
from repro.platform import LINUX_X86, SOLARIS_SPARC
from repro.runtime import Process
from repro.toolchain import LibraryBuilder, minc

MASK = 0xFFFFFFFF


def _sgn(value: int) -> int:
    value &= MASK
    return value - (1 << 32) if value & 0x80000000 else value


# -- reference interpreter ---------------------------------------------------

class _Return(Exception):
    def __init__(self, value: int) -> None:
        self.value = value


def _ref_expr(expr, env: Dict[str, int], params: List[int]) -> int:
    if isinstance(expr, minc.Const):
        return _sgn(expr.value)
    if isinstance(expr, minc.Param):
        return _sgn(params[expr.index])
    if isinstance(expr, minc.Local):
        return _sgn(env[expr.name])
    if isinstance(expr, minc.Neg):
        return _sgn(-_ref_expr(expr.operand, env, params))
    if isinstance(expr, minc.BinOp):
        a = _ref_expr(expr.lhs, env, params)
        b = _ref_expr(expr.rhs, env, params)
        if expr.op == "+":
            return _sgn(a + b)
        if expr.op == "-":
            return _sgn(a - b)
        if expr.op == "*":
            return _sgn(a * b)
        if expr.op == "&":
            return _sgn(a & b)
        if expr.op == "|":
            return _sgn(a | b)
        if expr.op == "^":
            return _sgn(a ^ b)
        if expr.op == "<<":
            return _sgn((a & MASK) << (b & 31))
        return _sgn((a & MASK) >> (b & 31))
    raise NotImplementedError(type(expr))


def _ref_cond(cond: minc.Cond, env, params) -> bool:
    a = _ref_expr(cond.lhs, env, params)
    b = _ref_expr(cond.rhs, env, params)
    return {"==": a == b, "!=": a != b, "<": a < b,
            "<=": a <= b, ">": a > b, ">=": a >= b}[cond.op]


def _ref_stmts(stmts, env, params) -> None:
    for stmt in stmts:
        if isinstance(stmt, minc.Return):
            raise _Return(0 if stmt.value is None
                          else _ref_expr(stmt.value, env, params))
        if isinstance(stmt, minc.Assign):
            env[stmt.name] = _ref_expr(stmt.value, env, params)
        elif isinstance(stmt, minc.If):
            branch = stmt.then if _ref_cond(stmt.cond, env, params) \
                else stmt.orelse
            _ref_stmts(branch, env, params)
        elif isinstance(stmt, minc.While):
            guard = 0
            while _ref_cond(stmt.cond, env, params):
                _ref_stmts(stmt.body, env, params)
                guard += 1
                assert guard < 10_000, "reference interpreter runaway"
        else:
            raise NotImplementedError(type(stmt))


def reference_run(body, params: List[int]) -> int:
    env: Dict[str, int] = {}
    try:
        _ref_stmts(body, env, params)
    except _Return as ret:
        return ret.value
    return 0


# -- program generator -------------------------------------------------------

_SMALL = st.integers(min_value=-500, max_value=500)
_OPS = st.sampled_from(["+", "-", "*", "&", "|", "^"])
_RELS = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])

_LOCALS = ("a", "b", "c")


def _expr(depth: int, defined: tuple):
    leafs = [
        _SMALL.map(minc.Const),
        st.sampled_from([0, 1]).map(minc.Param),
    ]
    if defined:
        leafs.append(st.sampled_from(defined).map(minc.Local))
    leaf = st.one_of(*leafs)
    if depth <= 0:
        return leaf
    sub = _expr(depth - 1, defined)
    return st.one_of(
        leaf,
        st.builds(minc.Neg, sub),
        st.builds(minc.BinOp, _OPS, sub, sub),
    )


def _cond(defined: tuple):
    return st.builds(minc.Cond, _RELS, _expr(1, defined),
                     _expr(1, defined))


@st.composite
def _program(draw):
    stmts: List[minc.Stmt] = []
    defined: tuple = ()
    for _ in range(draw(st.integers(1, 5))):
        kind = draw(st.sampled_from(["assign", "if", "assign", "while"]))
        if kind == "assign":
            name = draw(st.sampled_from(_LOCALS))
            stmts.append(minc.Assign(name, draw(_expr(2, defined))))
            if name not in defined:
                defined = defined + (name,)
        elif kind == "if":
            then = (minc.Assign("a", draw(_expr(1, defined))),)
            orelse = (minc.Assign("a", draw(_expr(1, defined))),)
            stmts.append(minc.If(draw(_cond(defined)), then, orelse))
            if "a" not in defined:
                defined = defined + ("a",)
        else:
            # bounded counting loop, guaranteed to terminate; loop-body
            # assignments do NOT enter `defined` (the loop may run zero
            # times, so reads after it would be uninitialized)
            stmts.append(minc.Assign("c", minc.Const(0)))
            if "c" not in defined:
                defined = defined + ("c",)
            body = (minc.Assign("b", draw(_expr(1, defined))),
                    minc.Assign("c", minc.BinOp("+", minc.Local("c"),
                                                minc.Const(1))))
            stmts.append(minc.While(
                minc.Cond("<", minc.Local("c"),
                          minc.Const(draw(st.integers(0, 6)))), body))
    stmts.append(minc.Return(draw(_expr(2, defined))))
    return tuple(stmts)


def _vm_run(body, params: List[int], platform) -> int:
    builder = LibraryBuilder("libdiff.so")
    builder.simple("f", 2, *body)
    image = builder.build(platform).image
    proc = Process(Kernel(os_name=platform.os), platform)
    proc.load(image)
    return proc.libcall("f", *[p & MASK for p in params])


@given(body=_program(), p0=_SMALL, p1=_SMALL)
@settings(max_examples=120, deadline=None)
def test_vm_matches_reference_x86(body, p0, p1):
    assert _vm_run(body, [p0, p1], LINUX_X86) == \
        reference_run(body, [p0, p1])


@given(body=_program(), p0=_SMALL, p1=_SMALL)
@settings(max_examples=60, deadline=None)
def test_vm_matches_reference_sparc(body, p0, p1):
    assert _vm_run(body, [p0, p1], SOLARIS_SPARC) == \
        reference_run(body, [p0, p1])


@given(body=_program(), p0=_SMALL, p1=_SMALL)
@settings(max_examples=40, deadline=None)
def test_propagation_is_sound_for_constants(body, p0, p1):
    """Whatever the function actually returns at runtime, if it is one
    of the program's literal constants produced by a constant return,
    the profiler must have either found it or marked nothing at all —
    never report a *wrong* constant set that excludes an actually
    returned constant return.

    (Soundness holds only for returns of literal constants; computed
    returns are legitimately absent.)
    """
    from repro.core.profiler import AnalysisContext

    builder = LibraryBuilder("libsound.so")
    builder.simple("f", 2, *body)
    image = builder.build(LINUX_X86).image
    ctx = AnalysisContext(LINUX_X86, {image.soname: image})
    analysis = ctx.analyze_function(image.soname,
                                    image.find_export("f").offset)

    last = body[-1]
    if isinstance(last.value, minc.Const):
        runtime = reference_run(body, [p0, p1])
        if runtime == _sgn(last.value.value):
            assert runtime in analysis.const_values()
