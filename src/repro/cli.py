"""Command-line interface — the paper's "two commands" experience (§6.1).

"The human effort involved in the basic use of LFI is small: it requires
issuing two commands, one for profiling and one for running the tests."

::

    python -m repro build-corpus --out ./sysroot
    python -m repro profile ./sysroot/libc.so.6.self \
        --kernel ./sysroot/kernel.self -o libc.profile.xml
    python -m repro generate-plan libc.profile.xml --mode random \
        --probability 0.1 -o plan.xml
    python -m repro run-demo pidgin --plan plan.xml --report report.txt

Systematic campaigns scale over a worker pool and cache profiles::

    python -m repro campaign minidb --jobs 4 --timeout 5 \
        --store ./profile-cache --summary-json summary.json

Plus binutils-style inspection (``objdump``, ``nm``, ``ldd``) and stub
source generation.  All artifacts are ordinary files: ``.self`` binaries,
XML profiles, XML plans, text logs.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from . import binfmt
from .binfmt import SharedObject
from .core.controller import Controller, generate_c_source
from .core.profiler import HeuristicConfig, Profiler
from .core.profiles import LibraryProfile
from .core.scenario import (exhaustive_plan, io_faults, plan_from_xml,
                            plan_to_xml, random_plan)
from .errors import ReproError
from .kernel import Kernel, build_kernel_image
from .obs import (EventLogHandler, FileSink, NULL_TELEMETRY, StderrSink,
                  Telemetry)
from .platform import LINUX_X86, platform_by_name


def _telemetry_from_args(args: argparse.Namespace) -> Telemetry:
    """The run's telemetry context, from the global flags.

    Plain runs stay on the no-op context (zero overhead); ``--log-json``
    streams structured events to a JSONL file and ``--verbose`` renders
    every event (down to debug) on stderr.  Both may be combined.
    """
    sinks = []
    if getattr(args, "log_json", None):
        sinks.append(FileSink(args.log_json))
    if getattr(args, "verbose", False):
        sinks.append(StderrSink(min_severity="debug"))
    if not sinks and not getattr(args, "trace_out", None):
        return NULL_TELEMETRY
    return Telemetry(sinks=sinks)


def _notice(args: argparse.Namespace, message: str, **fields) -> None:
    """Informational diagnostics: event log and/or stderr, never stdout."""
    tele = getattr(args, "telemetry", NULL_TELEMETRY)
    if tele.enabled:
        tele.events.emit("cli", message=message, **fields)
    if getattr(args, "quiet", False) or getattr(args, "verbose", False):
        return          # verbose: the stderr sink already rendered it
    print(message, file=sys.stderr)


def _error(args: argparse.Namespace, message: str) -> None:
    """Error diagnostics: always stderr (callers return nonzero)."""
    tele = getattr(args, "telemetry", NULL_TELEMETRY)
    if tele.enabled:
        tele.events.emit("cli", severity="error", message=message)
    if not getattr(args, "verbose", False):
        print(f"error: {message}", file=sys.stderr)


def _load_image(path: str) -> SharedObject:
    return SharedObject.from_bytes(Path(path).read_bytes())


def _load_profiles(paths: Sequence[str]) -> Dict[str, LibraryProfile]:
    profiles = {}
    for path in paths:
        profile = LibraryProfile.from_xml(Path(path).read_text())
        profiles[profile.soname] = profile
    return profiles


# -- subcommands ------------------------------------------------------------

def cmd_build_corpus(args: argparse.Namespace) -> int:
    """Compile libc/libapr/libaprutil + the kernel image to disk."""
    from .apps.apr import apr, aprutil
    from .corpus.libc import libc

    platform = platform_by_name(args.platform)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    images = [libc(platform).image, apr(platform).image,
              aprutil(platform).image, build_kernel_image(platform)]
    for image in images:
        name = (f"{image.soname}.self" if image.kind != "kernel"
                else "kernel.self")
        (out / name).write_bytes(image.to_bytes())
        _notice(args, f"wrote {out / name}  ({len(image.exports)} exports, "
                      f"{image.code_size()} bytes of code)",
                path=str(out / name), exports=len(image.exports))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Command 1: statically profile a library binary."""
    image = _load_image(args.library)
    platform = platform_by_name(args.platform)
    libraries = {image.soname: image}
    for extra in args.with_library or []:
        dep = _load_image(extra)
        libraries[dep.soname] = dep
    kernel_image = _load_image(args.kernel) if args.kernel else None
    heuristics = (HeuristicConfig.all_enabled() if args.heuristics
                  else HeuristicConfig.default())
    telemetry = getattr(args, "telemetry", NULL_TELEMETRY)
    if args.store:
        from .core.store import ProfileStore
        store = ProfileStore(args.store, telemetry=telemetry)
        profiles = store.profile_or_load(platform, libraries,
                                         kernel_image, heuristics,
                                         jobs=args.jobs)
        profile = profiles[image.soname]
        origin = "cache" if store.hits else "analysis"
    else:
        profiler = Profiler(platform, libraries, kernel_image, heuristics,
                            telemetry=telemetry)
        profile = profiler.profile_library(image.soname, jobs=args.jobs)
        origin = "analysis"
    xml = profile.to_xml()
    if args.output:
        Path(args.output).write_text(xml)
        _notice(args, f"profiled {image.soname}: "
                      f"{len(profile.functions)} functions via {origin} "
                      f"-> {args.output}",
                soname=image.soname, functions=len(profile.functions),
                origin=origin)
    else:
        print(xml)
    return 0


def cmd_generate_plan(args: argparse.Namespace) -> int:
    profiles = _load_profiles(args.profiles)
    if args.mode == "exhaustive":
        plan = exhaustive_plan(profiles, functions=args.function or None)
    elif args.mode == "random":
        plan = random_plan(profiles, probability=args.probability,
                           seed=args.seed,
                           functions=args.function or None)
    else:   # io preset
        libc_profile = profiles.get("libc.so.6")
        if libc_profile is None:
            _error(args, "the io preset needs a libc profile")
            return 2
        plan = io_faults(libc_profile, probability=args.probability,
                         seed=args.seed)
    xml = plan_to_xml(plan)
    if args.output:
        Path(args.output).write_text(xml)
        _notice(args, f"{plan.trigger_count()} triggers over "
                      f"{len(plan.functions())} functions -> {args.output}",
                triggers=plan.trigger_count())
    else:
        print(xml)
    return 0


def cmd_stub_source(args: argparse.Namespace) -> int:
    plan = plan_from_xml(Path(args.plan).read_text())
    platform = platform_by_name(args.platform)
    source = generate_c_source(plan.functions(), platform)
    if args.output:
        Path(args.output).write_text(source)
        _notice(args, f"stub source for {len(plan.functions())} "
                      f"functions -> {args.output}")
    else:
        print(source)
    return 0


def cmd_profile_diff(args: argparse.Namespace) -> int:
    """Compare two versions' fault profiles (the §1 library-drift story)."""
    from .core.diff import diff_profiles, focus_functions

    old = LibraryProfile.from_xml(Path(args.old).read_text())
    new = LibraryProfile.from_xml(Path(args.new).read_text())
    diff = diff_profiles(old, new)
    print(diff.render())
    focus = focus_functions(diff)
    if focus:
        print("\nsuggested post-upgrade faultload targets: "
              + ", ".join(focus))
    return 0 if diff.is_compatible else 1


def cmd_objdump(args: argparse.Namespace) -> int:
    image = _load_image(args.library)
    if args.function:
        print(binfmt.objdump_function(image, args.function))
    else:
        print(binfmt.objdump(image))
    return 0


def cmd_nm(args: argparse.Namespace) -> int:
    print(binfmt.nm(_load_image(args.library)))
    return 0


def cmd_ldd(args: argparse.Namespace) -> int:
    image = _load_image(args.library)
    available = {}
    for path in Path(args.path).glob("*.self"):
        dep = SharedObject.from_bytes(path.read_bytes())
        available[dep.soname] = dep
    for module in binfmt.ldd(image, available):
        print(f"    {module.soname}")
    return 0


def cmd_run_demo(args: argparse.Namespace) -> int:
    """Command 2: run a canned program under test with a faultload."""
    platform = platform_by_name(args.platform)
    plan = plan_from_xml(Path(args.plan).read_text())
    from .corpus.libc import libc
    profiles: Dict[str, LibraryProfile] = {}
    if args.profiles:
        profiles = _load_profiles(args.profiles)
    lfi = Controller(platform, profiles, plan, seed=args.seed,
                     telemetry=getattr(args, "telemetry", NULL_TELEMETRY))

    if args.app == "pidgin":
        outcome = _demo_pidgin(lfi, platform)
    elif args.app == "minidb":
        outcome = _demo_minidb(lfi, platform)
    else:
        outcome = _demo_miniweb(lfi, platform)

    print(f"outcome: {outcome.status}"
          + (f" ({outcome.detail})" if outcome.detail else ""))
    print(f"injections: {outcome.injections}; trigger evaluations: "
          f"{lfi.evaluations}")
    if args.report:
        Path(args.report).write_text(lfi.logbook.render() + "\n")
        _notice(args, f"log -> {args.report}")
    if args.replay_out:
        Path(args.replay_out).write_text(outcome.replay_xml)
        _notice(args, f"replay script -> {args.replay_out}")
    return 1 if outcome.crashed else 0


def _demo_pidgin(lfi: Controller, platform):
    from .apps.minipidgin import MiniPidgin

    def session():
        app = MiniPidgin(Kernel(os_name=platform.os), platform,
                         controller=lfi)
        app.login_and_chat([f"buddy{i}.example.org" for i in range(12)])
        return 0

    return lfi.run_test(session, test_id="pidgin")


def _demo_minidb(lfi: Controller, platform):
    from .apps.minidb import MiniDB
    from .apps.workloads import SysbenchOltpDriver

    def session():
        db = MiniDB(Kernel(os_name=platform.os), platform, controller=lfi)
        driver = SysbenchOltpDriver(db)
        result = driver.run(20, read_only=False)
        return 1 if result.errors else 0

    return lfi.run_test(session, test_id="minidb")


def _demo_miniweb(lfi: Controller, platform):
    from .apps.miniweb import MiniWeb
    from .apps.workloads import ApacheBenchDriver

    def session():
        server = MiniWeb(Kernel(os_name=platform.os), platform,
                         controller=lfi)
        result = ApacheBenchDriver(server).run_static(20)
        return 1 if result.failures else 0

    return lfi.run_test(session, test_id="miniweb")


def cmd_campaign(args: argparse.Namespace) -> int:
    """Systematic (function, errno) campaign over a worker pool."""
    from .corpus.libc import libc
    from .session import Session

    platform = platform_by_name(args.platform)
    heuristics = (HeuristicConfig.all_enabled() if args.heuristics
                  else HeuristicConfig.default())
    telemetry = getattr(args, "telemetry", NULL_TELEMETRY)
    session = Session(platform, app=args.app, jobs=args.jobs,
                      timeout=args.timeout, backend=args.backend,
                      snapshot=args.snapshot,
                      store=args.store, heuristics=heuristics,
                      telemetry=telemetry,
                      results_dir=args.results_dir, resume=args.resume)
    session.load(libc(platform))
    report = session.campaign(
        _campaign_factory(args.app, platform),
        functions=args.function or None,
        call_ordinals=tuple(args.call_ordinal or [1]),
        max_codes_per_function=args.max_codes,
        fault_classes=tuple(args.fault_class or ["return"]),
        latency_ns=args.latency_ns,
        fail_rate=args.fail_rate,
        guided=args.guided,
        budget_cases=args.budget_cases)

    if report.resumed is not None and report.resumed["skipped"]:
        _notice(args, f"resumed: {report.resumed['skipped']} cases from "
                      f"the result journal, {report.resumed['replayed']} "
                      f"(re)run", **report.resumed)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
        summary = report.summary
        if summary is not None:
            print(f"\n{summary.cases} cases in {summary.duration:.2f}s "
                  f"({summary.cases_per_second:.1f} cases/sec, "
                  f"jobs={summary.jobs}, backend={summary.backend}, "
                  f"utilization={summary.worker_utilization:.0%})")
    if args.report:
        Path(args.report).write_text(report.to_json() + "\n")
        _notice(args, f"report -> {args.report}")
    if args.summary_json:
        Path(args.summary_json).write_text(session.summary_json() + "\n")
        _notice(args, f"run summary -> {args.summary_json}")
    if getattr(args, "trace_out", None):
        spans = telemetry.tracer.to_dicts() if telemetry.enabled else []
        from .obs.tracing import TRACE_SCHEMA
        Path(args.trace_out).write_text(json.dumps(
            {"schema": TRACE_SCHEMA, "spans": spans},
            indent=2, sort_keys=True) + "\n")
        _notice(args, f"span tree -> {args.trace_out}")
    return 0 if report.outcome() == "ok" else 1


def cmd_triage(args: argparse.Namespace) -> int:
    """Deduplicate a journaled campaign's failures into ranked buckets."""
    from .core.results import ResultStore, triage_records

    store = ResultStore(args.results_dir,
                        telemetry=getattr(args, "telemetry", NULL_TELEMETRY))
    if args.list:
        campaigns = store.campaigns()
        if not campaigns:
            _notice(args, f"no campaigns recorded in {args.results_dir}")
        for entry in campaigns:
            outcomes = ", ".join(f"{k}={n}" for k, n
                                 in sorted(entry["outcomes"].items()))
            print(f"{entry['campaign'][:12]}  {entry['app'] or '?':<10} "
                  f"{entry['cases']:>5} cases  ({outcomes})")
        return 0
    key = store.resolve(args.campaign)
    records = store.load(key)
    journal = store.open_campaign(key)
    report = triage_records(key, records.values(), app=journal.app,
                            include_errors=args.include_errors)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    if args.replay_dir:
        out = Path(args.replay_dir)
        out.mkdir(parents=True, exist_ok=True)
        written = 0
        for i, bucket in enumerate(report.buckets, 1):
            if not bucket.replay_xml:
                continue
            path = out / f"bucket-{i:02d}-{bucket.key}.xml"
            path.write_text(bucket.replay_xml)
            written += 1
        _notice(args, f"{written} replay plans -> {args.replay_dir}",
                replays=written)
    return 0 if not report.buckets else 1


def cmd_report(args: argparse.Namespace) -> int:
    """Aggregate a journaled campaign into the failure-mode matrix."""
    from .core.results import ResultStore, matrix_from_store
    from .obs.report import render_html_report

    store = ResultStore(args.results_dir,
                        telemetry=getattr(args, "telemetry", NULL_TELEMETRY))
    key = store.resolve(args.campaign)
    matrix = matrix_from_store(store, key)
    if args.json:
        print(matrix.to_json())
    else:
        print(matrix.render())
    if args.out:
        Path(args.out).write_text(matrix.to_json() + "\n")
        _notice(args, f"matrix JSON -> {args.out}")
    if args.html:
        records = store.load(key)
        Path(args.html).write_text(
            render_html_report(matrix, records))
        _notice(args, f"HTML report -> {args.html}")
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """Live view of a running journaled campaign."""
    from .obs.report import watch_journal

    try:
        return watch_journal(args.journal, campaign=args.campaign,
                             interval=args.interval, once=args.once)
    except KeyboardInterrupt:
        return 0


def cmd_gate(args: argparse.Namespace) -> int:
    """Evaluate declarative robustness gates against a campaign matrix."""
    from .core.results import (ResultStore, evaluate_gates, load_gate_spec,
                               matrix_from_store)

    spec = load_gate_spec(args.spec)
    baseline = None
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
    store = ResultStore(args.results_dir,
                        telemetry=getattr(args, "telemetry", NULL_TELEMETRY))
    matrix = matrix_from_store(store, store.resolve(args.campaign))
    report = evaluate_gates(matrix.to_dict(), spec, baseline=baseline)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    if args.report:
        Path(args.report).write_text(report.to_json() + "\n")
        _notice(args, f"gate report -> {args.report}")
    return 0 if report.ok else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Reconstruct run statistics from a ``--log-json`` event stream."""
    from .obs.events import read_events, summarize_events
    from .obs.metrics import MetricsRegistry
    from .obs.tracing import render_span_dicts

    events = read_events(args.events)
    if not events:
        _error(args, f"no repro events found in {args.events}")
        return 1
    summary = summarize_events(events)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    kinds = ", ".join(f"{k}={n}" for k, n in sorted(summary["kinds"].items()))
    print(f"{summary['events']} events ({kinds})")
    if summary["cases"]:
        outcomes = ", ".join(f"{k}={n}" for k, n
                             in sorted(summary["outcomes"].items()))
        print(f"cases: {summary['cases']} ({outcomes})")
    if summary["injections"]:
        print("injections by function:")
        for function, count in sorted(summary["injections"].items()):
            per = summary["injections_by_errno"].get(function, {})
            detail = ", ".join(f"{errno}={n}"
                               for errno, n in sorted(per.items()))
            print(f"  {function:<16} {count:>4}  ({detail})")
    cache = summary["cache"]
    if cache["hits"] or cache["misses"]:
        ratio = cache["hit_ratio"]
        print(f"profile cache: {cache['hits']} hits, "
              f"{cache['misses']} misses"
              + (f" ({ratio:.0%} hit ratio)" if ratio is not None else ""))
    code = summary.get("code_cache") or {}
    if code.get("blocks_compiled") or code.get("hits"):
        ratio = code.get("hit_ratio")
        line = (f"code cache: {code['hits']} hits, "
                f"{code['blocks_compiled']} blocks compiled"
                + (f" ({ratio:.0%} hit ratio)" if ratio is not None
                   else ""))
        if code.get("traces_linked") or code.get("trace_hits"):
            line += (f", {code['traces_linked']} traces linked, "
                     f"{code['trace_hits']} trace hits")
        if code.get("trace_invalidations"):
            line += f", {code['trace_invalidations']} invalidated"
        if code.get("evictions"):
            line += f", {code['evictions']} evicted"
        print(line)
    durable = summary.get("results") or {}
    if durable.get("campaigns"):
        print(f"result store: {durable['skipped']} cases resumed from "
              f"the journal, {durable['replayed']} executed "
              f"({durable['campaigns']} journaled campaign(s))")
    snaps = summary.get("snapshots") or {}
    if snaps.get("taken") or snaps.get("restored"):
        restored = snaps.get("restored", 0)
        avg = (snaps["dirty_pages"] / restored) if restored else 0.0
        print(f"snapshots: {snaps.get('taken', 0)} taken, "
              f"{restored} restores, "
              f"{snaps.get('dirty_pages', 0)} dirty pages restored "
              f"(avg {avg:.1f}/restore, "
              f"{snaps.get('restored_bytes', 0)} bytes, "
              f"{snaps.get('restore_seconds', 0.0):.3f}s restoring)")
    latency = summary.get("latency")
    if latency:
        quantiles = ", ".join(
            f"{key}={latency[key] / 1e6:.2f}ms"
            for key in ("p50", "p90", "p99") if key in latency)
        print(f"request latency: {int(latency['count'])} requests, "
              f"mean {latency['mean'] / 1e6:.2f}ms ({quantiles})")
    faults = summary.get("faults") or {}
    if faults.get("virtual_delay_ns"):
        print(f"injected latency: "
              f"{faults['virtual_delay_ns'] / 1e6:.2f}ms of virtual "
              f"delay added to the kernel clock")
    if faults.get("partial_io_bytes"):
        print(f"partial I/O: {int(faults['partial_io_bytes'])} bytes "
              f"trimmed off transfer counts")
    if args.spans:
        rendered = render_span_dicts(summary["spans"])
        if rendered:
            print("spans:")
            print(rendered)
    if args.metrics and summary["metrics"]:
        print(MetricsRegistry.restore(summary["metrics"]).render_text())
    return 0


def _campaign_factory(app: str, platform):
    """Per-case workload factories (smaller than the run-demo ones so
    exhaustive campaigns stay quick).

    Each is a :class:`~repro.core.campaign.PrefixFactory` — ``setup``
    boots the program under test, ``run`` drives the monitored
    workload — so ``campaign --snapshot`` can checkpoint the booted
    guest once per trigger function and replay only the workload
    suffix per fault case.  Without snapshots the factory behaves as a
    plain session factory (setup + run, fresh per case).
    """
    from .core.campaign import PrefixFactory

    if app == "pidgin":
        from .apps.minipidgin import MiniPidgin

        def setup(lfi):
            return MiniPidgin(Kernel(os_name=platform.os), platform,
                              controller=lfi)

        def run(lfi, client):
            client.login_and_chat(
                [f"buddy{i}.example.org" for i in range(4)])
            return 0
        return PrefixFactory(setup, run, workload_id="pidgin-login-4")
    if app == "minidb":
        from .apps.minidb import DbError, MiniDB

        def setup(lfi):
            return MiniDB(Kernel(os_name=platform.os), platform,
                          controller=lfi)

        def run(lfi, db):
            try:
                db.execute("create table t k v")
                for i in range(3):
                    db.execute(f"insert into t {i} value{i}")
                db.execute("select from t where k 1")
                db.checkpoint()
            except DbError:
                return 1      # graceful: the engine reported the fault
            return 0
        return PrefixFactory(setup, run, workload_id="minidb-basic")

    from .apps.miniweb import MiniWeb
    from .apps.workloads import ApacheBenchDriver

    def setup(lfi):
        return MiniWeb(Kernel(os_name=platform.os), platform,
                       controller=lfi)

    def run(lfi, server):
        result = ApacheBenchDriver(server).run_static(6)
        return 1 if result.failures else 0
    return PrefixFactory(setup, run, workload_id="miniweb-static-6")


# -- parser -------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LFI library-level fault injector (DSN'09 "
                    "reproduction)")
    # global observability flags live on the root parser only: defining
    # them on subparsers too would reset the root's values (argparse
    # applies subparser defaults last)
    parser.add_argument("--log-json", metavar="PATH",
                        help="stream structured JSONL events to PATH "
                             "(inspect with 'repro stats PATH')")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="render every event (down to debug) on stderr")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress informational diagnostics on stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--platform", default=LINUX_X86.name,
                       help="linux-x86 | windows-x86 | solaris-sparc")

    p = sub.add_parser("build-corpus",
                       help="compile libc/libapr/kernel images to disk")
    common(p)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_build_corpus)

    p = sub.add_parser("profile", help="statically profile a library")
    common(p)
    p.add_argument("library", help="path to a .self image")
    p.add_argument("--kernel", help="kernel image for syscall analysis")
    p.add_argument("--with-library", action="append",
                   help="additional dependency images")
    p.add_argument("--heuristics", action="store_true",
                   help="enable the unsound §3.1 profile filters")
    p.add_argument("--store",
                   help="profile-cache directory (reuse across programs, "
                        "re-analyze only on library updates)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel per-export analysis workers")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("campaign",
                       help="systematic per-(function, errno) fault "
                            "campaign against a demo app")
    common(p)
    p.add_argument("app", choices=("pidgin", "minidb", "miniweb"))
    p.add_argument("--function", action="append",
                   help="restrict to these libc functions")
    p.add_argument("--call-ordinal", action="append", type=int,
                   help="inject at these call ordinals (default: 1)")
    p.add_argument("--max-codes", type=int, default=None,
                   help="cap error codes per function")
    p.add_argument("--fault-class", action="append",
                   choices=("return", "delay", "short-read",
                            "partial-write"),
                   help="fault action families to enumerate (repeat; "
                        "default: return)")
    p.add_argument("--latency-ns", type=int, default=1_000_000,
                   help="virtual latency per 'delay' injection "
                        "(default: 1ms)")
    p.add_argument("--fail-rate", type=float, default=None,
                   help="make every case probabilistic at this rate "
                        "under a recorded seed instead of firing at an "
                        "exact call ordinal")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel case workers (0 = one per CPU)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-case timeout in seconds (hung cases are "
                        "reaped and reported as 'hung')")
    p.add_argument("--backend", choices=("serial", "thread", "process"),
                   default=None,
                   help="worker backend (default: auto; process adds "
                        "crash isolation)")
    p.add_argument("--snapshot", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="checkpoint the booted workload once per trigger "
                        "function and replay only the post-trigger suffix "
                        "per case (results stay bit-identical)")
    p.add_argument("--store",
                   help="profile-cache directory")
    p.add_argument("--results-dir", metavar="DIR",
                   help="durable result store: journal every finished "
                        "case so interrupted runs can resume and "
                        "'repro triage' can dissect them")
    p.add_argument("--resume", action="store_true",
                   help="skip cases already journaled in --results-dir "
                        "under the same campaign key")
    p.add_argument("--guided", action="store_true",
                   help="coverage-guided adaptive scheduling: run the "
                        "highest-novelty cases first, prune subsumed "
                        "ones, expand promising call ordinals "
                        "(incompatible with --fail-rate)")
    p.add_argument("--budget-cases", type=int, default=None,
                   metavar="N",
                   help="with --guided: stop after scheduling N cases")
    p.add_argument("--heuristics", action="store_true",
                   help="enable the unsound §3.1 profile filters")
    p.add_argument("--json", action="store_true",
                   help="print the campaign report as JSON")
    p.add_argument("--report", help="write the JSON report here")
    p.add_argument("--summary-json",
                   help="write the machine-readable run summary here")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the run's span tree here as JSON")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("triage",
                       help="deduplicate a journaled campaign's failures "
                            "into ranked buckets with replay plans")
    p.add_argument("results_dir",
                   help="result store directory (campaign --results-dir)")
    p.add_argument("--campaign", metavar="PREFIX", default=None,
                   help="campaign key prefix (default: the store's only "
                        "campaign)")
    p.add_argument("--list", action="store_true",
                   help="list the store's campaigns and exit")
    p.add_argument("--include-errors", action="store_true",
                   help="also bucket graceful error-exit outcomes")
    p.add_argument("--replay-dir", metavar="DIR",
                   help="write one replay plan XML per bucket here")
    p.add_argument("--json", action="store_true",
                   help="print the triage report as JSON")
    p.set_defaults(fn=cmd_triage)

    p = sub.add_parser("report",
                       help="aggregate a journaled campaign into the "
                            "failure-mode matrix")
    p.add_argument("results_dir",
                   help="result store directory (campaign --results-dir)")
    p.add_argument("--campaign", metavar="PREFIX", default=None,
                   help="campaign key prefix (default: the store's only "
                        "campaign)")
    p.add_argument("--json", action="store_true",
                   help="print the repro.matrix/1 document instead of "
                        "the text table")
    p.add_argument("--out", metavar="PATH",
                   help="write the matrix JSON here (the gate baseline "
                        "artifact)")
    p.add_argument("--html", metavar="PATH",
                   help="write a self-contained HTML report here "
                        "(per-cell drilldown, replay plans, "
                        "coverage-novelty ranking)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("watch",
                       help="live view of a running journaled campaign")
    p.add_argument("journal",
                   help="journal.jsonl, a campaign directory, or a "
                        "result store root")
    p.add_argument("--campaign", metavar="PREFIX", default=None,
                   help="campaign key prefix when pointing at a store")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between polls (default: 1)")
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit (scripting/CI)")
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("gate",
                       help="evaluate declarative robustness gates "
                            "against a campaign matrix (exits nonzero "
                            "on regression)")
    p.add_argument("spec", help="gate spec (YAML or JSON)")
    p.add_argument("results_dir",
                   help="result store directory (campaign --results-dir)")
    p.add_argument("--campaign", metavar="PREFIX", default=None,
                   help="campaign key prefix (default: the store's only "
                        "campaign)")
    p.add_argument("--baseline", metavar="PATH",
                   help="baseline repro.matrix/1 JSON for forbid_new "
                        "gates (from 'repro report --out')")
    p.add_argument("--json", action="store_true",
                   help="print the gate report as JSON")
    p.add_argument("--report", metavar="PATH",
                   help="write the gate report JSON here")
    p.set_defaults(fn=cmd_gate)

    p = sub.add_parser("stats",
                       help="reconstruct run statistics from a "
                            "--log-json event stream")
    p.add_argument("events", help="JSONL event file from --log-json")
    p.add_argument("--json", action="store_true",
                   help="print the reconstructed summary as JSON")
    p.add_argument("--metrics", action="store_true",
                   help="render the final metrics snapshot "
                        "(Prometheus text format)")
    p.add_argument("--spans", action="store_true",
                   help="render the recorded span trees")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("generate-plan", help="build a fault scenario")
    p.add_argument("profiles", nargs="+", help="profile XML files")
    p.add_argument("--mode", choices=("exhaustive", "random", "io"),
                   default="random")
    p.add_argument("--probability", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--function", action="append",
                   help="restrict to these functions")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_generate_plan)

    p = sub.add_parser("stub-source",
                       help="emit the C interceptor stubs for a plan")
    common(p)
    p.add_argument("plan")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_stub_source)

    p = sub.add_parser("profile-diff",
                       help="fault-surface drift between two profiles")
    p.add_argument("old", help="old version's profile XML")
    p.add_argument("new", help="new version's profile XML")
    p.set_defaults(fn=cmd_profile_diff)

    p = sub.add_parser("objdump", help="disassemble a .self image")
    p.add_argument("library")
    p.add_argument("--function")
    p.set_defaults(fn=cmd_objdump)

    p = sub.add_parser("nm", help="list symbols of a .self image")
    p.add_argument("library")
    p.set_defaults(fn=cmd_nm)

    p = sub.add_parser("ldd", help="resolve a library's dependencies")
    p.add_argument("library")
    p.add_argument("--path", default=".",
                   help="directory of .self images")
    p.set_defaults(fn=cmd_ldd)

    p = sub.add_parser("run-demo",
                       help="run a demo app under fault injection")
    common(p)
    p.add_argument("app", choices=("pidgin", "minidb", "miniweb"))
    p.add_argument("--plan", required=True)
    p.add_argument("--profiles", nargs="*", default=[])
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--report", help="write the injection log here")
    p.add_argument("--replay-out", help="write the replay script here")
    p.set_defaults(fn=cmd_run_demo)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.telemetry = _telemetry_from_args(args)
    handler = None
    if args.telemetry.enabled:
        # bridge stdlib logging into the same structured event stream
        handler = EventLogHandler(args.telemetry.events)
        logging.getLogger().addHandler(handler)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        _error(args, str(exc))
        return 2
    except BrokenPipeError:
        return 0      # e.g. `repro objdump ... | head`
    except ReproError as exc:
        _error(args, str(exc))
        return 1
    finally:
        if handler is not None:
            logging.getLogger().removeHandler(handler)
        if args.telemetry.enabled:
            args.telemetry.finalize()
            args.telemetry.close()


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
