"""Documentation parsing and the §6.3 accuracy metric."""

import pytest

from repro.core.accuracy import (AccuracyResult, format_accuracy_table,
                                 reported_constants, score_against_docs,
                                 score_against_truth)
from repro.core.docparse import ParsedDoc, parse_man_page, parse_manual
from repro.core.profiles import (SE_ARG, SE_TLS, ErrorReturn,
                                 FunctionProfile, LibraryProfile,
                                 SideEffect)
from repro.errors import DocParseError

CLOSE_PAGE = """
NAME
    close - close a file descriptor

SYNOPSIS
    int close(int fd);

RETURN VALUE
    close() returns zero on success.  On error, -1 is returned, and
    errno is set appropriately.

ERRORS
    EBADF  fd isn't a valid open file descriptor.
    EINTR  The close() call was interrupted by a signal.
    EIO    An I/O error occurred.
"""

LINKAT_PAGE = """
NAME
    linkat - create a file link relative to directory fds

RETURN VALUE
    On error, -1 is returned.

ERRORS
    The same errors that occur for link can also occur here.
"""

LINK_PAGE = """
NAME
    link - make a new name for a file

RETURN VALUE
    On error, -1 is returned.

ERRORS
    EEXIST  newpath already exists.
    ENOENT  a component of oldpath does not exist.
"""

VAGUE_PAGE = """
NAME
    xmlparse - parse a document

RETURN VALUE
    Returns 0 if successful, a positive error code otherwise.

ERRORS
    No errors are defined.
"""


class TestManPageParser:
    def test_errno_extraction(self):
        doc = parse_man_page(CLOSE_PAGE)
        assert doc.function == "close"
        assert doc.errno_names == ["EBADF", "EINTR", "EIO"]

    def test_error_retval_extraction(self):
        doc = parse_man_page(CLOSE_PAGE)
        assert -1 in doc.error_retvals

    def test_constants_are_kernel_signed(self):
        consts = parse_man_page(CLOSE_PAGE).error_constants()
        assert -9 in consts and -5 in consts and -4 in consts

    def test_vague_pages_flagged(self):
        assert parse_man_page(VAGUE_PAGE).vague

    def test_cross_reference_detected(self):
        doc = parse_man_page(LINKAT_PAGE)
        assert doc.cross_references == ["link"]

    def test_manual_resolves_cross_references(self):
        manual = parse_manual({"link": LINK_PAGE, "linkat": LINKAT_PAGE})
        assert set(manual["linkat"].errno_names) == {"EEXIST", "ENOENT"}

    def test_pageless_name_rejected(self):
        with pytest.raises(DocParseError):
            parse_man_page("RETURN VALUE\n    nothing\n")

    def test_explicit_function_name_override(self):
        doc = parse_man_page("ERRORS\n    EIO  boom.\n", function="f")
        assert doc.function == "f" and doc.errno_names == ["EIO"]


def _profile_with(name, retvals, errno_values=(), arg_values=()):
    effects = []
    if errno_values:
        effects.append(SideEffect(SE_TLS, "l.so", offset=0x10,
                                  values=tuple(errno_values)))
    if arg_values:
        effects.append(SideEffect(SE_ARG, "l.so", arg_index=1,
                                  values=tuple(arg_values)))
    profile = LibraryProfile(soname="l.so", platform="linux-x86")
    profile.functions[name] = FunctionProfile(
        name=name,
        error_returns=[ErrorReturn(retvals[0], tuple(effects))]
        + [ErrorReturn(v) for v in retvals[1:]])
    return profile


class TestReportedConstants:
    def test_errno_values_normalized(self):
        fp = _profile_with("f", [-1], errno_values=[9]).function("f")
        assert reported_constants(fp) == {-1, -9}

    def test_arg_values_excluded(self):
        fp = _profile_with("f", [-1], arg_values=[-5]).function("f")
        assert reported_constants(fp) == {-1}


class TestScoring:
    def test_docs_scoring_counts(self):
        profile = _profile_with("close", [-1], errno_values=[-9, -5, -4])
        docs = {"close": parse_man_page(CLOSE_PAGE)}
        result = score_against_docs(profile, docs)
        # reported: {-1, -9, -5, -4}; documented identical
        assert (result.tp, result.fn, result.fp) == (4, 0, 0)
        assert result.accuracy == 1.0

    def test_docs_scoring_counts_misses_and_extras(self):
        profile = _profile_with("close", [-1], errno_values=[-9, -12])
        docs = {"close": parse_man_page(CLOSE_PAGE)}
        result = score_against_docs(profile, docs)
        assert result.tp == 2          # -1, -9
        assert result.fn == 2          # -5, -4 not found
        assert result.fp == 1          # -12 undocumented
        assert result.accuracy == pytest.approx(2 / 5)

    def test_accuracy_formula(self):
        r = AccuracyResult("l", "p", tp=52, fn=10, fp=0)
        assert r.accuracy == pytest.approx(52 / 62)

    def test_table_formatting(self):
        text = format_accuracy_table(
            [AccuracyResult("libpcre.so", "linux-x86", tp=52, fn=10)])
        assert "libpcre.so" in text and "84%" in text

    def test_truth_scoring_on_generated_library(self):
        from repro.corpus.spec import LibrarySpec, generate_library
        from repro.core.profiler import HeuristicConfig, Profiler
        from repro.platform import LINUX_X86
        generated = generate_library(
            LibrarySpec(soname="libscore.so", n_functions=6,
                        visible_codes=9, hidden_codes=3, phantom_codes=2,
                        seed=5),
            LINUX_X86)
        profiler = Profiler(LINUX_X86,
                            {generated.image.soname: generated.image},
                            heuristics=HeuristicConfig.all_enabled())
        profile = profiler.profile_library(generated.image.soname)
        result = score_against_truth(profile, generated.built)
        assert result.tp == 9
        assert result.fn == 3
        assert result.fp == 2
