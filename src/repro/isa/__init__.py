"""Synthetic instruction set: operands, instructions, ABIs, encode/decode.

This package is the machine layer of the reproduction.  See DESIGN.md §2
for why the paper's real x86/SPARC targets are replaced by a synthetic,
byte-encoded ISA with the same structural properties.
"""

from .abi import SPARCSIM, WORD, X86SIM, Abi, abi_for
from .asmparse import parse_asm
from .assembler import LabelDef, assemble, collect_labels, label, program_size
from .disassembler import disassemble, format_listing
from .encoder import (decode_instruction, decode_range, encode_instruction,
                      encode_program, measure)
from .instructions import (CONDITIONAL_BRANCHES, CONTROL_FLOW, JCC_TAKEN,
                           TERMINATORS, Decoded, Instruction, ins)
from .operands import (SEGMENT_TLS, Imm, ImportSlot, Label, LabelImm, Mem,
                       Operand, Reg, Rel)

__all__ = [
    "Abi", "X86SIM", "SPARCSIM", "WORD", "abi_for",
    "Instruction", "Decoded", "ins",
    "CONDITIONAL_BRANCHES", "CONTROL_FLOW", "JCC_TAKEN", "TERMINATORS",
    "Reg", "Imm", "Mem", "Rel", "ImportSlot", "Label", "LabelImm", "Operand",
    "SEGMENT_TLS",
    "assemble", "label", "LabelDef", "collect_labels", "program_size",
    "parse_asm",
    "encode_instruction", "encode_program", "measure",
    "decode_instruction", "decode_range",
    "disassemble", "format_listing",
]
