"""WorkerPool semantics: ordered results, timeouts, crash isolation."""

import os
import threading
import time

import pytest

from repro.core.exec.pool import (MAX_THREAD_JOBS, PROCESS, SERIAL, THREAD,
                                  TASK_CRASHED, TASK_ERROR, TASK_HUNG,
                                  TASK_OK, RemoteTaskError, WorkerPool,
                                  resolve_jobs)


class TestResolveJobs:
    def test_auto_means_cpu_count(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs("auto") == (os.cpu_count() or 1)

    def test_thread_clamp(self):
        assert resolve_jobs(10_000, THREAD) == MAX_THREAD_JOBS

    def test_process_clamp_to_cpus(self):
        assert resolve_jobs(10_000, PROCESS) == (os.cpu_count() or 1)

    def test_minimum_one(self):
        assert resolve_jobs(-3) == 1


class TestBackendSelection:
    def test_serial_by_default(self):
        assert WorkerPool(jobs=1).backend == SERIAL

    def test_thread_when_parallel(self):
        assert WorkerPool(jobs=4).backend == THREAD

    def test_thread_when_timeout_requested(self):
        # serial cannot enforce timeouts, so jobs=1 + timeout -> thread
        assert WorkerPool(jobs=1, timeout=1.0).backend == THREAD

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=2, backend="fibers")


class TestSerialBackend:
    def test_map_ordered(self):
        results = WorkerPool(jobs=1).map(lambda x: x * 10, [3, 1, 2])
        assert [r.value for r in results] == [30, 10, 20]
        assert [r.index for r in results] == [0, 1, 2]
        assert all(r.ok for r in results)

    def test_error_captured_not_raised(self):
        def boom(x):
            if x == 1:
                raise ValueError("nope")
            return x

        results = WorkerPool(jobs=1).map(boom, [0, 1, 2])
        assert [r.status for r in results] == [TASK_OK, TASK_ERROR, TASK_OK]
        with pytest.raises(ValueError):
            results[1].unwrap()
        assert results[2].unwrap() == 2

    def test_empty_input(self):
        assert WorkerPool(jobs=4).map(lambda x: x, []) == []


class TestThreadBackend:
    def test_results_in_input_order_despite_finish_order(self):
        def slow_then_fast(x):
            # earlier items sleep longer, so completion order reverses
            time.sleep(0.05 * (4 - x))
            return x * 2

        results = WorkerPool(jobs=4, backend=THREAD).map(
            slow_then_fast, [0, 1, 2, 3])
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert [r.index for r in results] == [0, 1, 2, 3]

    def test_hung_task_reaped_without_stalling(self):
        release = threading.Event()
        try:
            def work(x):
                if x == "hang":
                    release.wait(30)
                    return "late"
                return x

            started = time.monotonic()
            results = WorkerPool(jobs=2, backend=THREAD, timeout=0.2).map(
                work, ["a", "hang", "b"])
            elapsed = time.monotonic() - started
            assert [r.status for r in results] \
                == [TASK_OK, TASK_HUNG, TASK_OK]
            assert results[1].value is None
            assert elapsed < 5          # nowhere near the worker's 30s
        finally:
            release.set()               # unblock the leaked daemon thread

    def test_reaped_task_releases_its_worker_slot(self):
        release = threading.Event()
        try:
            def work(x):
                if x == "hang":
                    release.wait(30)
                return x

            # jobs=1: the follow-up item can only run if the hung
            # task's slot was released by the reaper
            results = WorkerPool(jobs=1, backend=THREAD, timeout=0.2).map(
                work, ["hang", "after"])
            assert results[0].status == TASK_HUNG
            assert results[1].status == TASK_OK
            assert results[1].value == "after"
        finally:
            release.set()

    def test_unwrap_hung_raises_remote_error(self):
        release = threading.Event()
        try:
            results = WorkerPool(jobs=1, backend=THREAD, timeout=0.1).map(
                lambda _x: release.wait(30), [None])
            with pytest.raises(RemoteTaskError):
                results[0].unwrap()
        finally:
            release.set()


class TestProcessBackend:
    def test_roundtrip(self):
        results = WorkerPool(jobs=2, backend=PROCESS).map(
            lambda x: x + 1, [1, 2, 3])
        assert [r.value for r in results] == [2, 3, 4]

    def test_worker_exception_travels_back(self):
        def boom(_x):
            raise RuntimeError("inside the child")

        (result,) = WorkerPool(jobs=1, backend=PROCESS).map(boom, [0])
        assert result.status == TASK_ERROR
        assert "inside the child" in str(result.error)

    def test_dead_worker_is_crashed_not_fatal(self):
        def die(_x):
            os._exit(3)

        results = WorkerPool(jobs=1, backend=PROCESS).map(die, [0, 1])
        assert [r.status for r in results] == [TASK_CRASHED, TASK_CRASHED]
        assert "exit code 3" in str(results[0].error)

    def test_hung_worker_killed_on_timeout(self):
        def hang(x):
            if x == "hang":
                time.sleep(30)
            return x

        started = time.monotonic()
        results = WorkerPool(jobs=1, backend=PROCESS, timeout=0.5).map(
            hang, ["ok", "hang"])
        assert results[0].status == TASK_OK
        assert results[1].status == TASK_HUNG
        assert time.monotonic() - started < 10
