"""The textual assembler: parse, assemble, execute, round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binfmt import SharedObject, Symbol
from repro.errors import AssemblyError
from repro.isa import X86SIM, Imm, ImportSlot, Label, LabelImm, Mem, Reg, assemble
from repro.isa.asmparse import parse_asm
from repro.isa.assembler import LabelDef
from repro.kernel import Kernel
from repro.platform import LINUX_X86
from repro.runtime import Process


def _instructions(src):
    return [i for i in parse_asm(src, X86SIM)
            if not isinstance(i, LabelDef)]


class TestOperandParsing:
    def test_registers(self):
        (insn,) = _instructions("push ebp")
        assert insn.operands == (Reg("ebp"),)

    def test_immediates(self):
        assert _instructions("push 0x10")[0].operands == (Imm(0x10),)
        assert _instructions("push -0x1")[0].operands == (Imm(-1),)
        assert _instructions("push 42")[0].operands == (Imm(42),)

    def test_memory_base(self):
        (insn,) = _instructions("mov eax, [ebp]")
        assert insn.operands[1] == Mem(base="ebp")

    def test_memory_disp(self):
        assert _instructions("mov eax, [ebp+0x8]")[0].operands[1] \
            == Mem(base="ebp", disp=8)
        assert _instructions("mov eax, [ebp-0x4]")[0].operands[1] \
            == Mem(base="ebp", disp=-4)

    def test_memory_indexed(self):
        (insn,) = _instructions("mov eax, [ebx+ecx*4+0x10]")
        assert insn.operands[1] == Mem(base="ebx", index="ecx", scale=4,
                                       disp=0x10)

    def test_memory_absolute(self):
        (insn,) = _instructions("mov eax, [0x1000]")
        assert insn.operands[1] == Mem(disp=0x1000)

    def test_tls_segment(self):
        (insn,) = _instructions("add ecx, gs:[0x0]")
        assert insn.operands[1] == Mem(disp=0, segment="gs")

    def test_plt_slot(self):
        (insn,) = _instructions("call <plt:3>")
        assert insn.operands == (ImportSlot(3),)

    def test_label_reference(self):
        (insn,) = _instructions("jmp done")
        assert insn.operands == (Label("done"),)

    def test_label_imm(self):
        (insn,) = _instructions("sub ecx, offset here")
        assert insn.operands[1] == LabelImm("here")

    def test_comments_and_blanks(self):
        items = parse_asm("""
            ; full-line comment
            nop         # trailing comment
            ret
        """, X86SIM)
        assert len(items) == 2


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            parse_asm("frobnicate eax", X86SIM)

    def test_wrong_arity(self):
        with pytest.raises(AssemblyError, match="takes 2 operands"):
            parse_asm("mov eax", X86SIM)

    def test_bad_operand(self):
        with pytest.raises(AssemblyError):
            parse_asm("push @nope", X86SIM)

    def test_bad_memory_register(self):
        with pytest.raises(AssemblyError):
            parse_asm("mov eax, [qqq*4+ebx]", X86SIM)


class TestEndToEnd:
    SOURCE = """
    f:
        push ebp
        mov  ebp, esp
        mov  eax, [ebp+0x8]
        cmp  eax, 0x0
        jnz  nonzero
        mov  eax, -0x1
        jmp  done
    nonzero:
        mov  eax, 0x1
    done:
        leave
        ret
    """

    def _load(self):
        items = parse_asm(self.SOURCE, X86SIM)
        text = assemble(items, X86SIM)
        image = SharedObject(soname="libasm.so", machine="x86sim",
                             text=text,
                             exports=(Symbol("f", 0, len(text)),))
        proc = Process(Kernel(), LINUX_X86)
        proc.load(image)
        return proc

    def test_assembles_and_runs(self):
        proc = self._load()
        assert proc.libcall("f", 0) == -1
        assert proc.libcall("f", 7) == 1

    def test_roundtrip_through_objdump_style_rendering(self):
        """render() output of parsed instructions re-parses identically."""
        items = parse_asm(self.SOURCE, X86SIM)
        rendered = []
        for item in items:
            if isinstance(item, LabelDef):
                rendered.append(f"{item.name}:")
            else:
                rendered.append("    " + item.render())
        again = parse_asm("\n".join(rendered), X86SIM)
        assert again == items


@given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
@settings(max_examples=50)
def test_property_immediate_roundtrip(value):
    (insn,) = _instructions(f"push {value}")
    assert insn.operands == (Imm(value),)
    reparsed = _instructions("push " + insn.operands[0].render())
    assert reparsed[0] == insn
