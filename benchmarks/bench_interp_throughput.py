"""Interpreter throughput: guest MIPS on a hot loop and on minidb.

Every campaign case burns most of its wall clock in the CPU interpreter
(`Cpu.run`), so guest instruction throughput is the denominator of every
other number in EXPERIMENTS.md.  This benchmark measures it directly:

* **hot loop** — a synthetic arithmetic/branch kernel (the interpreter's
  best case: everything stays in registers and one basic block);
* **minidb** — the campaign workload used by §6-style experiments
  (realistic mix: calls, PLT hops, syscalls, memory traffic).

Both are measured on the block-compiled fast path and on the exact
per-instruction path (the one a tracer gets), and the results land in
``BENCH_interp.json`` next to the recorded pre-tentpole baseline so the
speedup is tracked against a fixed denominator.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_interp_throughput.py``)
or under pytest.  Set ``REPRO_BENCH_FAST=1`` for a CI-sized smoke run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":                       # standalone: no conftest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.binfmt import SharedObject, Symbol
from repro.errors import RuntimeFault
from repro.isa import Imm, Label, Mem, Reg, assemble, ins, label
from repro.isa.assembler import collect_labels
from repro.kernel import Kernel
from repro.platform import LINUX_X86
from repro.runtime import Process
from repro.runtime.cpu import Cpu

from _benchutil import print_table

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

#: Hot-loop iterations (7 instructions per iteration, plus prologue).
_LOOP_ITERS = 20_000 if FAST else 300_000
_MINIDB_ROUNDS = 1 if FAST else 3

#: Pre-tentpole numbers, measured on this host with the seed per-
#: instruction interpreter (commit 15b5d10, dict registers, if/elif
#: dispatch) — the fixed denominator for the speedup claims below.
BASELINE = {
    "interpreter": "per-instruction step() (seed)",
    "hot_loop_mips": 0.70,
    "minidb_mips": 0.28,
}

_OUT = Path(__file__).resolve().parent.parent / "BENCH_interp.json"


def _hot_loop_image(iters: int) -> SharedObject:
    items = [
        label("hot"),
        ins("mov", Reg("ecx"), Imm(iters)),
        ins("mov", Reg("eax"), Imm(0)),
        ins("push", Imm(7)),
        label("loop"),
        ins("add", Reg("eax"), Imm(3)),
        ins("xor", Reg("eax"), Reg("edx")),
        ins("mov", Reg("edx"), Reg("eax")),
        ins("mov", Mem(base="esp"), Reg("eax")),
        ins("mov", Reg("ebx"), Mem(base="esp")),
        ins("sub", Reg("ecx"), Imm(1)),
        ins("jnz", Label("loop")),
        ins("pop", Reg("ebx")),
        ins("ret"),
    ]
    from repro.isa import X86SIM
    text = assemble(items, X86SIM)
    labels = collect_labels(items)
    return SharedObject(
        soname="libhot.so", machine="x86sim", text=text,
        exports=(Symbol("hot", labels["hot"], len(text)),))


def _measure_hot_loop(use_blocks: bool, use_traces: bool = False) -> float:
    """Guest MIPS on the synthetic loop."""
    image = _hot_loop_image(_LOOP_ITERS)
    proc = Process(Kernel(), LINUX_X86)
    proc.load(image)
    if hasattr(proc.cpu, "use_blocks"):
        proc.cpu.use_blocks = use_blocks
    if hasattr(proc.cpu, "use_traces"):
        proc.cpu.use_traces = use_traces
    try:                                        # warm caches / compile
        proc.libcall("hot", max_steps=2_000 if use_traces else 200)
    except RuntimeFault:
        pass                                    # budget hit mid-loop: fine
    before = proc.cpu.instructions_executed
    started = time.perf_counter()
    proc.libcall("hot")
    elapsed = time.perf_counter() - started
    executed = proc.cpu.instructions_executed - before
    return executed / elapsed / 1e6


def _measure_minidb(use_blocks: bool, use_traces: bool = False) -> float:
    """Guest MIPS across a minidb insert/select/checkpoint workload."""
    from repro.apps.minidb import MiniDB

    old = getattr(Cpu, "use_blocks", None)
    old_traces = getattr(Cpu, "use_traces", None)
    if old is not None:
        Cpu.use_blocks = use_blocks
    if old_traces is not None:
        Cpu.use_traces = use_traces
    try:
        executed = 0
        elapsed = 0.0
        for round_no in range(_MINIDB_ROUNDS):
            db = MiniDB(Kernel(os_name=LINUX_X86.os), LINUX_X86)
            started = time.perf_counter()
            db.execute("create table t k v")
            for i in range(20):
                db.execute(f"insert into t {i} value{i}")
            for i in range(20):
                db.execute(f"select from t where k {i}")
            db.checkpoint()
            elapsed += time.perf_counter() - started
            executed += db.proc.cpu.instructions_executed
        return executed / elapsed / 1e6
    finally:
        if old is not None:
            Cpu.use_blocks = old
        if old_traces is not None:
            Cpu.use_traces = old_traces


def _arms():
    has_blocks = hasattr(Cpu, "use_blocks")
    has_traces = hasattr(Cpu, "use_traces")
    results = {
        "hot_loop": {"step_mips": _measure_hot_loop(False),
                     "block_mips": _measure_hot_loop(has_blocks)},
        "minidb": {"step_mips": _measure_minidb(False),
                   "block_mips": _measure_minidb(has_blocks)},
    }
    if has_traces:
        results["hot_loop"]["trace_mips"] = _measure_hot_loop(
            True, use_traces=True)
        results["minidb"]["trace_mips"] = _measure_minidb(
            True, use_traces=True)
    for name, arm in results.items():
        base = BASELINE[f"{name}_mips"]
        best = arm.get("trace_mips", arm["block_mips"])
        arm["speedup_vs_baseline"] = round(best / base, 2)
        arm["speedup_vs_step"] = round(best / arm["step_mips"], 2)
    return results


def _report(results, write_json: bool = True):
    rows = []
    for name, arm in results.items():
        trace = arm.get("trace_mips")
        trace_txt = f"{trace:7.3f} MIPS" if trace is not None else "      —"
        rows.append(
            f"{name:<10} {BASELINE[name + '_mips']:7.3f} MIPS   "
            f"{arm['step_mips']:7.3f} MIPS   {arm['block_mips']:7.3f} MIPS"
            f"   {trace_txt}   {arm['speedup_vs_baseline']:5.2f}x")
    print_table(
        "interpreter throughput — guest MIPS "
        f"({'fast' if FAST else 'full'} mode)",
        "workload    baseline       step path      block path     "
        "trace path     speedup",
        rows)
    if write_json:
        _OUT.write_text(json.dumps({
            "schema": "repro.bench/1",
            "benchmark": "interp_throughput",
            "mode": "fast" if FAST else "full",
            "baseline": BASELINE,
            "results": results,
        }, indent=2, sort_keys=True) + "\n")
        print(f"wrote {_OUT}")


def _assert_speedup(results) -> None:
    if not hasattr(Cpu, "use_blocks"):
        return          # pre-tentpole: baseline recording only
    # CI runners are noisy; the full-mode bar is the paper claim (3x),
    # the fast-mode bar a regression tripwire
    bar = 2.0 if FAST else 3.0
    speedup = results["hot_loop"]["speedup_vs_baseline"]
    assert speedup >= bar, \
        f"hot-loop speedup {speedup:.2f}x fell below {bar:.1f}x baseline"
    assert results["minidb"]["block_mips"] \
        >= results["minidb"]["step_mips"] * 0.9, \
        "block compiler slower than per-instruction path on minidb"


def test_interp_throughput(benchmark):
    results = benchmark.pedantic(_arms, rounds=1, iterations=1)
    _report(results, write_json=not FAST)
    _assert_speedup(results)


if __name__ == "__main__":
    results = _arms()
    _report(results)
    _assert_speedup(results)
