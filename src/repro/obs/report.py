"""Campaign observatory: live journal tailing and the HTML report.

A journaled campaign (``campaign --results-dir``) is observable while
it runs and dissectable after it finishes.  This module supplies both
ends:

* :class:`JournalTailer` — an incremental reader over the append-only
  ``journal.jsonl``.  It only ever advances past **complete** lines, so
  a torn final line (the writer mid-append, or a crashed writer) is
  simply not consumed yet — the same tolerance the ``--resume`` reader
  has, made incremental.  Truncation or rotation (the file shrank) is
  detected from the size and the tailer starts over from offset zero.
* :class:`CampaignWatch` — the ``repro watch`` view over a tailer:
  progress against the journal's expected case count, throughput and
  ETA, per-outcome-class counts, snapshot efficiency, and the live
  failure-mode matrix, re-rendered as records arrive.
* :func:`render_html_report` — the ``repro report --html`` artifact: a
  single self-contained file with the matrix, per-cell drilldown to
  each case's detail and replay plan, and the coverage-novelty ranking
  (which cases to keep for a regression suite).

Everything reads only deterministic journal fields; the watch's clock
is injectable so its tests don't sleep.
"""

from __future__ import annotations

import html
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ResultsError

# NOTE: ``repro.obs`` sits *below* ``repro.core`` (core modules import
# obs.telemetry at module scope), so everything from core.results is
# imported lazily inside the functions that need it.

#: Schema tag of the serialized watch snapshot (``repro watch --json``).
WATCH_SCHEMA = "repro.watch/1"

#: Journal record schema accepted by the tailer (mirrors
#: ``core.results.store.RESULT_SCHEMA``; asserted equal in tests).
_RESULT_SCHEMA = "repro.case-result/1"


def resolve_journal(source: Any, campaign: Optional[str] = None
                    ) -> Tuple[Path, Dict[str, Any]]:
    """Resolve what the user pointed ``watch``/``report`` at.

    Accepts a ``journal.jsonl`` path, a campaign directory containing
    one, or a result-store root (resolved like ``triage --campaign``,
    with ``campaign`` as an optional key prefix).  Returns the journal
    path and the campaign's metadata (which may not exist yet for a
    journal that hasn't been written — watch starts before the first
    record lands).
    """
    path = Path(source)
    if path.is_file():
        root = path.parent
    elif (path / "journal.jsonl").exists() or (path / "meta.json").exists():
        root = path
    elif path.is_dir():
        from ..core.results import ResultStore
        store = ResultStore(path)
        key = store.resolve(campaign)
        root = Path(path) / key
    else:
        raise ResultsError(f"no journal at {path}: pass a journal.jsonl, "
                           f"a campaign directory, or a result store")
    meta: Dict[str, Any] = {}
    try:
        loaded = json.loads((root / "meta.json").read_text())
        if isinstance(loaded, dict):
            meta = loaded
    except (OSError, ValueError):
        pass
    return root / "journal.jsonl", meta


class JournalTailer:
    """Incrementally read finished-case records from a live journal.

    The reader contract matches ``CampaignJournal.finished()`` —
    non-JSON lines are skipped, records are filtered by schema (and by
    campaign key when one is given), the last record per case key wins
    — but consumption is incremental: :meth:`poll` returns only the
    records that arrived since the previous poll, and the byte offset
    only ever advances past a terminated line, so a torn tail is read
    on a later poll once its newline lands.
    """

    def __init__(self, path: Any, campaign: Optional[str] = None) -> None:
        self.path = Path(path)
        self.campaign = campaign
        self.offset = 0
        #: last-wins view of every record consumed so far, by case key
        self.records: Dict[str, Dict[str, Any]] = {}
        self.reopened = 0       # truncation/rotation restarts observed

    def poll(self) -> List[Dict[str, Any]]:
        """Consume newly completed lines; returns the new records."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return []           # not written yet (or rotated away)
        if size < self.offset:
            # the journal shrank underneath us: truncated or rotated.
            # Start over — last-wins replay over `records` converges to
            # the new file's content.
            self.offset = 0
            self.records.clear()
            self.reopened += 1
        if size == self.offset:
            return []
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            chunk = fh.read(size - self.offset)
        complete = chunk.rfind(b"\n") + 1
        if not complete:
            return []           # only a torn tail so far
        self.offset += complete
        fresh: List[Dict[str, Any]] = []
        for line in chunk[:complete].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue        # torn or foreign line
            if not isinstance(record, dict) \
                    or record.get("schema") != _RESULT_SCHEMA:
                continue
            if self.campaign and record.get("campaign") != self.campaign:
                continue
            self.records[record.get("case_key", record.get("case", ""))] \
                = record
            fresh.append(record)
        return fresh


class CampaignWatch:
    """The ``repro watch`` view: one tailer plus derived statistics."""

    def __init__(self, journal: Any, *, campaign: Optional[str] = None,
                 meta: Optional[Mapping[str, Any]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        journal_path, found_meta = resolve_journal(journal, campaign)
        self.journal_path = journal_path
        self.meta = dict(meta if meta is not None else found_meta)
        self.tailer = JournalTailer(journal_path,
                                    self.meta.get("campaign") or campaign)
        self.clock = clock
        self.started = clock()
        self.baseline: Optional[int] = None     # cases present at start

    # -- state -------------------------------------------------------------

    def refresh(self) -> int:
        """Poll the journal (and metadata); returns new-record count."""
        fresh = self.tailer.poll()
        if self.baseline is None:
            # everything present at the first poll predates this watch;
            # throughput counts only what arrives while we look
            self.baseline = len(self.tailer.records)
        try:
            meta = json.loads(
                (self.journal_path.parent / "meta.json").read_text())
            if isinstance(meta, dict):
                self.meta = meta
        except (OSError, ValueError):
            pass
        return len(fresh)

    def snapshot(self) -> Dict[str, Any]:
        """The watch's current state as plain data."""
        from ..core.results.matrix import OUTCOME_CLASSES, classify_record

        records = self.tailer.records
        golden = self.meta.get("golden")
        classes = {cls: 0 for cls in OUTCOME_CLASSES}
        not_reached = 0
        for record in records.values():
            if record.get("fired"):
                classes[classify_record(record, golden)] += 1
            else:
                not_reached += 1
        done = len(records)
        expected = self.meta.get("cases_expected")
        elapsed = max(self.clock() - self.started, 1e-9)
        seen = done - (self.baseline or 0)
        rate = seen / elapsed if seen > 0 else 0.0
        eta = None
        if expected and rate > 0 and expected > done:
            eta = (expected - done) / rate
        replays = [r["snapshot"] for r in records.values()
                   if r.get("snapshot")]
        return {
            "schema": WATCH_SCHEMA,
            "campaign": self.meta.get("campaign", ""),
            "app": self.meta.get("app", ""),
            "cases": done,
            "expected": expected,
            "classes": classes,
            "not_reached": not_reached,
            "rate": rate,
            "eta_seconds": eta,
            "reopened": self.tailer.reopened,
            "snapshot": {
                "replays": len(replays),
                "dirty_pages": sum(s.get("dirty_pages", 0)
                                   for s in replays),
                "restore_seconds": sum(s.get("seconds", 0.0)
                                       for s in replays),
            },
        }

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        from ..core.results.matrix import FailureMatrix

        snap = self.snapshot()
        done, expected = snap["cases"], snap["expected"]
        progress = f"{done} cases"
        if expected:
            pct = 100.0 * done / expected if expected else 0.0
            progress = f"{done}/{expected} cases ({pct:.0f}%)"
        lines = [f"watching campaign {snap['campaign'][:12]}"
                 + (f" ({snap['app']})" if snap['app'] else "")
                 + f": {progress}"]
        counted = ", ".join(f"{cls}={n}" for cls, n
                            in snap["classes"].items() if n)
        if snap["not_reached"]:
            counted += (", " if counted else "") \
                + f"not-reached={snap['not_reached']}"
        if counted:
            lines.append(f"  outcomes: {counted}")
        if snap["rate"] > 0:
            eta = snap["eta_seconds"]
            lines.append(f"  throughput: {snap['rate']:.1f} cases/sec"
                         + (f", eta {eta:.0f}s" if eta is not None else ""))
        replays = snap["snapshot"]["replays"]
        if replays:
            lines.append(
                f"  snapshots: {replays} replays, "
                f"{snap['snapshot']['dirty_pages']} dirty pages, "
                f"{snap['snapshot']['restore_seconds']:.3f}s restoring")
        if snap["reopened"]:
            lines.append(f"  journal rotated/truncated "
                         f"{snap['reopened']} time(s); re-read from start")
        records = sorted(self.tailer.records.values(),
                         key=lambda r: r.get("case", ""))
        if records:
            matrix = FailureMatrix.from_records(
                records, campaign=snap["campaign"], app=snap["app"],
                golden=self.meta.get("golden"))
            lines.append("")
            lines.append(matrix.render())
        return "\n".join(lines)

    def done(self) -> bool:
        expected = self.meta.get("cases_expected")
        return bool(expected) and len(self.tailer.records) >= expected


def watch_journal(source: Any, *, campaign: Optional[str] = None,
                  interval: float = 1.0, once: bool = False,
                  max_polls: Optional[int] = None,
                  stream=None,
                  clock: Callable[[], float] = time.monotonic,
                  sleep: Callable[[float], None] = time.sleep) -> int:
    """The ``repro watch`` loop: poll, render, repeat until complete.

    ``once`` renders a single frame (scripting/CI); ``max_polls``
    bounds the loop for tests.  On a terminal each frame repaints in
    place; otherwise frames separate with a blank line.
    """
    import sys
    out = stream if stream is not None else sys.stdout
    watch = CampaignWatch(source, campaign=campaign, clock=clock)
    tty = bool(getattr(out, "isatty", lambda: False)())
    polls = 0
    while True:
        watch.refresh()
        polls += 1
        if tty:
            out.write("\x1b[2J\x1b[H")
        elif polls > 1:
            out.write("\n")
        out.write(watch.render() + "\n")
        out.flush()
        if once or watch.done() \
                or (max_polls is not None and polls >= max_polls):
            return 0
        sleep(interval)


# -- the HTML report ---------------------------------------------------------

_CLASS_COLORS = {
    "crash": "#c0392b",
    "hang": "#8e44ad",
    "silent-corruption": "#d35400",
    "detected-error": "#2980b9",
    "survived": "#27ae60",
}

_HTML_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }
h1, h2 { font-weight: 600; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #ccc; padding: .35rem .7rem; text-align: left; }
th { background: #f4f4f4; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.badge { display: inline-block; padding: 0 .5rem; border-radius: .6rem;
         color: #fff; font-size: 12px; }
details { margin: .5rem 0 .5rem 1rem; }
summary { cursor: pointer; }
pre { background: #f8f8f8; border: 1px solid #ddd; padding: .6rem;
      overflow-x: auto; font-size: 12px; }
.muted { color: #888; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _badge(cls: str) -> str:
    color = _CLASS_COLORS.get(cls, "#7f8c8d")
    return (f'<span class="badge" style="background:{color}">'
            f'{_esc(cls)}</span>')


def _case_anchor(case_id: str) -> str:
    return "case-" + "".join(c if c.isalnum() else "-" for c in case_id)


def _drilldown(record: Mapping[str, Any], golden: Optional[str]) -> str:
    from ..core.results.matrix import classify_record

    case_id = record.get("case", "")
    cls = classify_record(record, golden)
    parts = [f'<details id="{_case_anchor(case_id)}">'
             f"<summary><code>{_esc(case_id)}</code> {_badge(cls)} "
             f'<span class="muted">{_esc(record.get("status", "?"))}'
             f"</span></summary>"]
    rows = [("function", record.get("function", "")),
            ("fault class", record.get("fault_class", "")),
            ("fired", record.get("fired")),
            ("injections", record.get("injections")),
            ("instructions", record.get("instructions")),
            ("detail", record.get("detail") or "—")]
    coverage = record.get("coverage") or {}
    if coverage:
        rows.append(("coverage", f"{coverage.get('blocks', 0)} blocks, "
                                 f"digest {coverage.get('digest', '')}"))
    if record.get("output"):
        rows.append(("output digest", record["output"]
                     + (" (= golden)" if record["output"] == golden
                        else " (diverges from golden)" if golden else "")))
    parts.append("<table>" + "".join(
        f"<tr><th>{_esc(k)}</th><td>{_esc(v)}</td></tr>"
        for k, v in rows) + "</table>")
    if record.get("replay"):
        parts.append("<p>replay plan:</p><pre>"
                     + _esc(record["replay"]) + "</pre>")
    parts.append("</details>")
    return "".join(parts)


def render_html_report(matrix,
                      records: Mapping[str, Mapping[str, Any]],
                      *, title: str = "") -> str:
    """One self-contained HTML file: matrix, drilldowns, novelty.

    ``matrix`` is a :class:`~repro.core.results.FailureMatrix`;
    ``records`` is the journal's last-wins record map (the same thing
    ``ResultStore.load`` returns); every matrix cell links down to its
    cases' full detail and replay plans, and the coverage-novelty table
    ranks the cases a regression suite should keep.
    """
    from ..core.results.matrix import OUTCOME_CLASSES, coverage_novelty

    by_case = {r.get("case", ""): r for r in records.values()}
    golden = matrix.golden
    name = title or (f"{matrix.app or 'campaign'} "
                     f"{matrix.campaign[:12]}")
    totals = matrix.totals()
    parts = [
        "<!doctype html><html><head><meta charset=\"utf-8\">",
        f"<title>{_esc(name)} — failure-mode matrix</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>Failure-mode matrix — {_esc(name)}</h1>",
        f"<p>{matrix.cases} cases, {matrix.fired} fired, "
        f"{matrix.cases - matrix.fired} never reached their trigger."
        + (f' Golden output digest <code>{_esc(golden)}</code>.'
           if golden else "") + "</p>",
        "<p>" + " ".join(f"{_badge(cls)} {totals[cls]}"
                         for cls in OUTCOME_CLASSES) + "</p>",
    ]

    # the matrix itself, each non-empty cell linking to its drilldown
    parts.append("<h2>Matrix</h2><table><tr><th>function</th>"
                 "<th>fault class</th>"
                 + "".join(f"<th>{_esc(cls)}</th>"
                           for cls in OUTCOME_CLASSES)
                 + "<th>not reached</th></tr>")
    for row in matrix.sorted_rows():
        cells = []
        for cls in OUTCOME_CLASSES:
            cell = row.cells.get(cls)
            if cell is None:
                cells.append('<td class="num muted">·</td>')
                continue
            links = " ".join(
                f'<a href="#{_case_anchor(case)}">{cell.count}</a>'
                for case in [sorted(cell.cases)[0]])
            cells.append(f'<td class="num">{links}</td>')
        parts.append(f"<tr><td><code>{_esc(row.function)}</code></td>"
                     f"<td>{_esc(row.fault_class)}</td>"
                     + "".join(cells)
                     + f'<td class="num">'
                       f'{row.not_reached or "·"}</td></tr>')
    parts.append("</table>")

    # per-bucket drilldowns, grouped by outcome class, worst first
    parts.append("<h2>Cases</h2>")
    for cls in OUTCOME_CLASSES:
        cases = sorted(
            case for row in matrix.rows.values()
            for cell_cls, cell in row.cells.items() if cell_cls == cls
            for case in cell.cases)
        if not cases:
            continue
        parts.append(f"<h3>{_badge(cls)} {len(cases)} case(s)</h3>")
        for case_id in cases:
            record = by_case.get(case_id)
            if record is not None:
                parts.append(_drilldown(record, golden))

    # coverage-novelty ranking: the regression-suite shortlist
    ranked = coverage_novelty(sorted(records.values(),
                                     key=lambda r: r.get("case", "")))
    if ranked:
        parts.append(
            "<h2>Coverage novelty</h2>"
            "<p>Greedy ranking by marginal new blocks covered — the "
            "shortest prefix of this list that reaches every observed "
            "block is the regression-suite shortlist.</p>"
            "<table><tr><th>#</th><th>case</th><th>new blocks</th>"
            "<th>total blocks</th><th>digest</th></tr>")
        for i, entry in enumerate(ranked, 1):
            parts.append(
                f'<tr><td class="num">{i}</td>'
                f'<td><a href="#{_case_anchor(entry["case"])}">'
                f'<code>{_esc(entry["case"])}</code></a></td>'
                f'<td class="num">{entry["new_blocks"]}</td>'
                f'<td class="num">{entry["blocks"]}</td>'
                f'<td><code>{_esc(entry["digest"])}</code></td></tr>')
        parts.append("</table>")

    parts.append("</body></html>")
    return "".join(parts)
