"""Dynamic linker semantics: load order, interposition, RTLD_NEXT, TLS."""

import pytest

from repro.binfmt import SharedObject, Symbol
from repro.errors import LoaderError
from repro.kernel import Kernel
from repro.layout import DATA_REGION_OFFSET, FIRST_MODULE_BASE
from repro.platform import LINUX_X86, SOLARIS_SPARC
from repro.runtime import Process
from repro.toolchain import LibraryBuilder, minc


def _const_lib(soname, value, fn="f"):
    builder = LibraryBuilder(soname)
    builder.simple(fn, 0, minc.Return(minc.Const(value)))
    return builder.build(LINUX_X86).image


class TestLoading:
    def test_module_bases_are_spaced(self, kernel, libc_linux):
        proc = Process(kernel, LINUX_X86)
        m0 = proc.load(_const_lib("a.so", 1))
        m1 = proc.load(_const_lib("b.so", 2))
        assert m0.base == FIRST_MODULE_BASE
        assert m1.base > m0.base
        assert m1.data_base == m1.base + DATA_REGION_OFFSET

    def test_wrong_machine_rejected(self, kernel):
        builder = LibraryBuilder("s.so")
        builder.simple("f", 0, minc.Return(minc.Const(0)))
        sparc_image = builder.build(SOLARIS_SPARC).image
        proc = Process(kernel, LINUX_X86)
        with pytest.raises(LoaderError):
            proc.load(sparc_image)

    def test_module_by_soname(self, kernel):
        proc = Process(kernel, LINUX_X86)
        proc.load(_const_lib("a.so", 1))
        assert proc.module_by_soname("a.so").image.soname == "a.so"
        with pytest.raises(LoaderError):
            proc.module_by_soname("nope.so")

    def test_tcb_self_pointer_initialized(self, kernel):
        proc = Process(kernel, LINUX_X86)
        module = proc.load(_const_lib("a.so", 1))
        assert proc.memory.read_u32(module.tls_base) == module.tls_base


class TestResolution:
    def test_first_provider_wins(self, kernel):
        proc = Process(kernel, LINUX_X86)
        proc.load(_const_lib("one.so", 111))
        proc.load(_const_lib("two.so", 222))
        assert proc.libcall("f") == 111

    def test_preload_interposes(self, kernel):
        """LD_PRELOAD semantics (§5.1)."""
        proc = Process(kernel, LINUX_X86)
        proc.load_program([_const_lib("orig.so", 1)],
                          preload=[_const_lib("shim.so", 99)])
        assert proc.libcall("f") == 99

    def test_windows_late_injection_interposes(self, kernel):
        """WriteProcessMemory/CreateRemoteThread semantics (§5.1)."""
        proc = Process(kernel, LINUX_X86)
        proc.load(_const_lib("orig.so", 1))
        assert proc.libcall("f") == 1        # PLT-level caches may be warm
        proc.inject_library(_const_lib("shim.so", 99))
        assert proc.libcall("f") == 99       # caches were flushed

    def test_rtld_next_skips_shim(self, kernel):
        proc = Process(kernel, LINUX_X86)
        shim = proc.load(_const_lib("shim.so", 99))
        proc.load(_const_lib("orig.so", 1))
        addr = proc.resolve_next("f", shim.index)
        orig_module = proc.module_for_addr(addr)
        assert orig_module.image.soname == "orig.so"

    def test_rtld_next_respects_resolution_order(self, kernel):
        proc = Process(kernel, LINUX_X86)
        proc.load(_const_lib("orig.so", 1))
        shim = proc.inject_library(_const_lib("shim.so", 99))
        addr = proc.resolve_next("f", shim.index)
        assert proc.module_for_addr(addr).image.soname == "orig.so"

    def test_rtld_next_exhausted(self, kernel):
        proc = Process(kernel, LINUX_X86)
        only = proc.load(_const_lib("only.so", 1))
        with pytest.raises(LoaderError):
            proc.resolve_next("f", only.index)

    def test_undefined_symbol(self, kernel):
        proc = Process(kernel, LINUX_X86)
        with pytest.raises(LoaderError):
            proc.lookup("ghost")

    def test_cross_library_import_resolution(self, kernel, libc_linux):
        builder = LibraryBuilder("wrapper.so", needed=("libc.so.6",))
        builder.simple("mypid", 0, minc.Return(minc.Call("getpid", ())))
        proc = Process(kernel, LINUX_X86)
        proc.load_program([builder.build(LINUX_X86).image,
                           libc_linux.image])
        assert proc.libcall("mypid") == proc.kstate.pid


class TestSymbolization:
    def test_symbol_for_addr(self, kernel):
        proc = Process(kernel, LINUX_X86)
        module = proc.load(_const_lib("a.so", 1))
        sym = module.image.find_export("f")
        assert proc.symbol_for_addr(module.base + sym.offset) == "f"
        assert proc.symbol_for_addr(0x100) is None

    def test_app_frames_in_backtrace(self, kernel):
        proc = Process(kernel, LINUX_X86)
        with proc.frame("refresh_files"):
            frames = proc.backtrace_frames()
        assert frames[-1] == (0, "refresh_files")
        assert proc.backtrace_frames() == []


class TestScratch:
    def test_cstr_roundtrip(self, kernel):
        proc = Process(kernel, LINUX_X86)
        addr = proc.cstr("/etc/passwd")
        assert proc.read_cstr(addr) == "/etc/passwd"

    def test_scratch_allocations_disjoint(self, kernel):
        proc = Process(kernel, LINUX_X86)
        a = proc.scratch_alloc(100)
        b = proc.scratch_alloc(100)
        assert abs(b - a) >= 100


class TestSparcCalls:
    def test_register_argument_passing(self, kernel_image_sparc, libc_sparc):
        kernel = Kernel(os_name="Solaris")
        proc = Process(kernel, SOLARIS_SPARC)
        builder = LibraryBuilder("m.so")
        builder.simple("sub", 2,
                       minc.Return(minc.BinOp("-", minc.Param(0),
                                              minc.Param(1))))
        builder_img = builder.build(SOLARIS_SPARC).image
        proc.load(builder_img)
        assert proc.libcall("sub", 50, 8) == 42
