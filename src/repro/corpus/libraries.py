"""The Table 2 / §6.2 library corpus.

One :class:`~repro.corpus.spec.LibrarySpec` per row of the paper's
Table 2, parameterized so the generated library *should* produce the
paper's TP/FN/FP counts when profiled and scored against its own
documentation; plus ``libpcre`` for the hand-audited ground-truth
experiment (52 TP / 10 FN / 0 FP over 20 exported functions) and the
graded-size set used for the §6.2 profiling-time measurements (libdmx,
18 functions / 8 KB ... libxml2, 1612 functions / 897 KB).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..platform import (LINUX_X86, SOLARIS_SPARC, WINDOWS_X86, Platform,
                        platform_by_name)
from .spec import GeneratedLibrary, LibrarySpec, generate_library

#: (soname, platform, n_functions, TP, FN, FP, filler, indirect-branch fns)
TABLE2_ROWS: Tuple[Tuple[str, Platform, int, int, int, int, int, int], ...] = (
    ("libssl", WINDOWS_X86, 300, 164, 18, 6, 24, 1),
    ("libxml2", SOLARIS_SPARC, 1612, 1003, 138, 88, 40, 2),
    ("libpanel", SOLARIS_SPARC, 25, 23, 0, 0, 12, 0),
    ("libpctx", SOLARIS_SPARC, 15, 10, 0, 2, 12, 0),
    ("libldap", LINUX_X86, 250, 368, 45, 21, 24, 1),
    ("libxml2", LINUX_X86, 1612, 989, 152, 102, 40, 2),
    ("libXss", LINUX_X86, 12, 12, 1, 0, 12, 0),
    ("libgtkspell", LINUX_X86, 8, 7, 0, 0, 12, 0),
    ("libpanel", LINUX_X86, 25, 21, 2, 0, 12, 0),
    ("libdmx", LINUX_X86, 18, 26, 8, 0, 16, 0),
    ("libao", LINUX_X86, 15, 12, 3, 0, 12, 0),
    ("libhesiod", LINUX_X86, 12, 10, 0, 0, 12, 0),
    ("libnetfilter_q", LINUX_X86, 30, 24, 2, 0, 12, 0),
    ("libcdt", LINUX_X86, 20, 15, 0, 0, 12, 0),
    ("libdaemon", LINUX_X86, 30, 30, 3, 0, 12, 0),
    ("libdns_sd", LINUX_X86, 40, 50, 4, 2, 12, 0),
    ("libgimpthumb", LINUX_X86, 35, 31, 3, 3, 12, 0),
    ("libvorbisfile", LINUX_X86, 35, 133, 4, 39, 16, 1),
)

#: Paper-reported accuracies, for EXPERIMENTS.md comparison.
TABLE2_PAPER_ACCURACY: Dict[Tuple[str, str], int] = {
    ("libssl", "windows-x86"): 87,
    ("libxml2", "solaris-sparc"): 81,
    ("libpanel", "solaris-sparc"): 100,
    ("libpctx", "solaris-sparc"): 83,
    ("libldap", "linux-x86"): 85,
    ("libxml2", "linux-x86"): 80,
    ("libXss", "linux-x86"): 92,
    ("libgtkspell", "linux-x86"): 100,
    ("libpanel", "linux-x86"): 91,
    ("libdmx", "linux-x86"): 76,
    ("libao", "linux-x86"): 80,
    ("libhesiod", "linux-x86"): 100,
    ("libnetfilter_q", "linux-x86"): 92,
    ("libcdt", "linux-x86"): 100,
    ("libdaemon", "linux-x86"): 91,
    ("libdns_sd", "linux-x86"): 89,
    ("libgimpthumb", "linux-x86"): 84,
    ("libvorbisfile", "linux-x86"): 75,
}


def table2_spec(soname: str, n_functions: int, tp: int, fn: int, fp: int,
                filler: int, indirect_fns: int) -> LibrarySpec:
    return LibrarySpec(
        soname=f"{soname}.so",
        n_functions=n_functions,
        visible_codes=tp,
        hidden_codes=fn,
        phantom_codes=fp,
        seed=hash(soname) & 0xFFFF,
        filler_instructions=filler,
        errno_fraction=0.15,
        outarg_fraction=0.08,
        indirect_branch_fns=indirect_fns,
    )


_CACHE: Dict[Tuple[str, str], GeneratedLibrary] = {}


def build_table2_library(soname: str,
                         platform: Platform) -> GeneratedLibrary:
    """Build (cached) one Table 2 library for a platform."""
    key = (soname, platform.name)
    if key in _CACHE:
        return _CACHE[key]
    for row in TABLE2_ROWS:
        name, plat, n_fns, tp, fn, fp, filler, ind = row
        if name == soname and plat.name == platform.name:
            generated = generate_library(
                table2_spec(name, n_fns, tp, fn, fp, filler, ind), plat)
            _CACHE[key] = generated
            return generated
    raise KeyError(f"no Table 2 row for {soname} on {platform.name}")


def all_table2_libraries() -> List[GeneratedLibrary]:
    return [build_table2_library(row[0], row[1]) for row in TABLE2_ROWS]


def build_libpcre(platform: Platform = LINUX_X86) -> GeneratedLibrary:
    """The hand-audited library: 20 exports, 52 TP, 10 FN, 0 FP (§6.3)."""
    spec = LibrarySpec(
        soname="libpcre.so",
        n_functions=20,
        visible_codes=52,
        hidden_codes=10,
        phantom_codes=0,
        seed=0x9C4E,
        filler_instructions=16,
        errno_fraction=0.1,
    )
    return generate_library(spec, platform)


#: §6.2 profiling-time ladder: (soname, functions, filler) — filler scales
#: the code segment from libdmx-small to libxml2-large.
EFFICIENCY_LADDER: Tuple[Tuple[str, int, int], ...] = (
    ("libdmx.so", 18, 16),
    ("libpanel.so", 25, 12),
    ("libdaemon.so", 30, 12),
    ("libldap.so", 250, 24),
    ("libssl.so", 300, 24),
    ("libxml2.so", 1612, 40),
)
