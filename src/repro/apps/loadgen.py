"""miniweb load generation: concurrent clients and latency analysis.

Where :class:`~repro.apps.workloads.ApacheBenchDriver` issues strictly
sequential requests, the load generator here drives the miniweb server
with **windows of concurrent clients** — many connections queued in the
listen backlog before the server drains them — and measures a
*per-request virtual latency* for every request.

Virtual time is fully deterministic: it advances with every executed
guest instruction (``ns_per_insn`` each) and with every virtual-clock
jump the kernel makes (``nanosleep``, injected :class:`DelayFault`\\ s).
A latency campaign therefore produces bit-identical histograms on every
run, which is what makes the regression report below usable as a CI
guard rather than a flaky wall-clock comparison.

Per-request latencies stream into the ``repro_request_latency_ns``
histogram when a telemetry context is attached, and aggregate into a
:class:`LatencyReport` (p50/p90/p99/p99.9).  :class:`LatencyRegression`
compares two reports quantile-by-quantile and flags ratios above a
threshold — the shape of a perf-CI latency analyzer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..corpus.libc import libc
from ..obs.telemetry import as_telemetry
from ..platform import Platform
from ..runtime import Process
from .miniweb import STATIC_PAGE, MiniWeb

_CHUNK = 256

#: upper bounds (virtual ns) for the request-latency histogram
LATENCY_BUCKETS = (10_000.0, 30_000.0, 100_000.0, 300_000.0,
                   1_000_000.0, 3_000_000.0, 10_000_000.0,
                   30_000_000.0, 100_000_000.0)

#: quantiles every report carries, as (label, fraction)
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99),
             ("p999", 0.999))


def _quantile(ordered: Sequence[int], fraction: float) -> int:
    """Nearest-rank quantile over an already-sorted sample."""
    if not ordered:
        return 0
    rank = max(0, min(len(ordered) - 1,
                      int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class LatencyReport:
    """Aggregated per-request latencies of one load-generator run."""

    requests: int
    failures: int
    quantiles: Dict[str, int]       # label -> virtual ns
    mean_ns: float
    max_ns: int

    @classmethod
    def from_samples(cls, samples: Sequence[int],
                     failures: int = 0) -> "LatencyReport":
        ordered = sorted(samples)
        return cls(
            requests=len(samples),
            failures=failures,
            quantiles={label: _quantile(ordered, f)
                       for label, f in QUANTILES},
            mean_ns=(sum(ordered) / len(ordered)) if ordered else 0.0,
            max_ns=ordered[-1] if ordered else 0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "failures": self.failures,
            "quantiles_ns": dict(self.quantiles),
            "mean_ns": round(self.mean_ns, 3),
            "max_ns": self.max_ns,
        }

    def render(self) -> str:
        cells = "  ".join(f"{label}={self.quantiles[label]}ns"
                          for label, _ in QUANTILES)
        return (f"{self.requests} requests, {self.failures} failures  "
                f"{cells}  mean={self.mean_ns:.0f}ns")


@dataclass
class LatencyRegression:
    """Quantile-by-quantile comparison of two latency reports.

    ``threshold`` is the candidate/baseline ratio above which a
    quantile counts as regressed (1.25 = 25% slower).  A baseline
    quantile of zero only regresses if the candidate is nonzero.
    """

    baseline: LatencyReport
    candidate: LatencyReport
    threshold: float = 1.25

    def ratios(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for label, _ in QUANTILES:
            base = self.baseline.quantiles.get(label, 0)
            cand = self.candidate.quantiles.get(label, 0)
            out[label] = (cand / base) if base else \
                (float("inf") if cand else 1.0)
        return out

    def regressions(self) -> List[str]:
        return [label for label, ratio in self.ratios().items()
                if ratio > self.threshold]

    @property
    def ok(self) -> bool:
        return not self.regressions() and \
            self.candidate.failures <= self.baseline.failures

    def render(self) -> str:
        lines = [f"latency regression check "
                 f"(threshold {self.threshold:.2f}x): "
                 + ("OK" if self.ok else "REGRESSED")]
        ratios = self.ratios()
        for label, _ in QUANTILES:
            base = self.baseline.quantiles.get(label, 0)
            cand = self.candidate.quantiles.get(label, 0)
            mark = " <-- regression" if label in self.regressions() else ""
            lines.append(f"  {label:<5} {base:>12}ns -> {cand:>12}ns  "
                         f"({ratios[label]:.2f}x){mark}")
        if self.candidate.failures > self.baseline.failures:
            lines.append(f"  failures {self.baseline.failures} -> "
                         f"{self.candidate.failures} <-- regression")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "threshold": self.threshold,
            "ratios": {k: round(v, 4) for k, v in self.ratios().items()},
            "regressions": self.regressions(),
            "baseline": self.baseline.to_dict(),
            "candidate": self.candidate.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


@dataclass
class LoadResult:
    """Raw output of one load-generator run."""

    samples: List[int] = field(default_factory=list)  # virtual ns each
    failures: int = 0

    @property
    def requests(self) -> int:
        return len(self.samples)

    def report(self) -> LatencyReport:
        return LatencyReport.from_samples(self.samples, self.failures)


class _ClientSlot:
    """One reusable concurrent client: its own guest process and
    preallocated request/response buffers (windows reuse slots, so a
    thousands-of-clients run does not grow guest memory)."""

    def __init__(self, server: MiniWeb) -> None:
        self.proc = Process(server.kernel, server.platform)
        self.proc.load_program([libc(server.platform).image])
        self.send_buf = self.proc.scratch_alloc(_CHUNK)
        self.recv_buf = self.proc.scratch_alloc(_CHUNK)
        self.fd = -1
        self.started_ns = 0
        self.ok = False


class LoadGenerator:
    """Windowed-concurrency loopback load against a miniweb server.

    ``window`` clients connect and send before the server drains the
    backlog, so every request's latency includes the queueing delay its
    window imposes — a DelayFault on any server-side call shows up in
    the tail quantiles of *all* requests queued behind it.  ``window``
    must stay within the listen backlog (16).
    """

    def __init__(self, server: MiniWeb, *, window: int = 8,
                 ns_per_insn: int = 10, telemetry=None) -> None:
        if window < 1 or window > 16:
            raise ValueError("window must be within the listen "
                             "backlog (1..16)")
        self.server = server
        self.window = window
        self.ns_per_insn = ns_per_insn
        self.telemetry = as_telemetry(telemetry)
        self._latency_metric = self.telemetry.metrics.histogram(
            "repro_request_latency_ns",
            "Per-request virtual latency through the miniweb load "
            "generator", ("page",), buckets=LATENCY_BUCKETS)
        self._slots = [_ClientSlot(server) for _ in range(window)]

    # -- virtual time -------------------------------------------------------

    def _now_ns(self) -> int:
        """Deterministic virtual time: instructions + kernel clock."""
        instructions = self.server.proc.cpu.instructions_executed
        for slot in self._slots:
            instructions += slot.proc.cpu.instructions_executed
        return instructions * self.ns_per_insn + \
            self.server.kernel.clock_ns

    # -- driving ------------------------------------------------------------

    def run(self, n_clients: int,
            *, page: str = STATIC_PAGE) -> LoadResult:
        """Issue ``n_clients`` requests in windows of ``window``."""
        result = LoadResult()
        remaining = n_clients
        while remaining > 0:
            batch = self._slots[:min(self.window, remaining)]
            self._open_window(batch, page)
            for _ in batch:
                self.server.serve_one()
            self._drain_window(batch, page, result)
            remaining -= len(batch)
        return result

    def _open_window(self, batch: List[_ClientSlot], page: str) -> None:
        request = f"GET {page} HTTP/1.0\r\n\r\n".encode()
        for slot in batch:
            proc = slot.proc
            slot.started_ns = self._now_ns()
            slot.ok = False
            slot.fd = proc.libcall("socket", 2, 1, 0)
            if slot.fd < 0:
                continue
            if proc.libcall("connect", slot.fd, self.server.port, 0) < 0:
                proc.libcall("close", slot.fd)
                slot.fd = -1
                continue
            proc.mem_write(slot.send_buf, request)
            if proc.libcall("send", slot.fd, slot.send_buf,
                            len(request), 0) <= 0:
                proc.libcall("close", slot.fd)
                slot.fd = -1

    def _drain_window(self, batch: List[_ClientSlot], page: str,
                      result: LoadResult) -> None:
        for slot in batch:
            proc = slot.proc
            if slot.fd >= 0:
                out = bytearray()
                while True:
                    n = proc.libcall("recv", slot.fd, slot.recv_buf,
                                     _CHUNK, 0)
                    if n <= 0:
                        break
                    out += proc.mem_read(slot.recv_buf, n)
                slot.ok = out.startswith(b"HTTP/1.0 200")
                proc.libcall("close", slot.fd)
                slot.fd = -1
            latency = self._now_ns() - slot.started_ns
            result.samples.append(latency)
            if not slot.ok:
                result.failures += 1
            self._latency_metric.observe(latency, page=page)


def loadgen_factory(platform: Platform, *, n_clients: int = 48,
                    window: int = 8, page: str = STATIC_PAGE,
                    telemetry=None):
    """A campaign :class:`~repro.core.campaign.PrefixFactory` whose
    monitored suffix is a load-generator run (setup boots the server,
    so snapshot campaigns checkpoint a listening miniweb)."""
    from ..kernel import Kernel
    from ..core.campaign import PrefixFactory

    def setup(lfi):
        return MiniWeb(Kernel(os_name=platform.os), platform,
                       controller=lfi)

    def run(lfi, server):
        gen = LoadGenerator(server, window=window, telemetry=telemetry)
        outcome = gen.run(n_clients, page=page)
        return 1 if outcome.failures else 0

    return PrefixFactory(setup=setup, run=run,
                         workload_id=f"miniweb-loadgen-{n_clients}"
                                     f"w{window}")
