"""Synthetic library corpus: libc, the Table 2 set, docs, Table 1 pop."""

from .docs import man_page_for, manual_for_library
from .libc import LIBC_SONAME, build_libc, libc
from .libraries import (EFFICIENCY_LADDER, TABLE2_PAPER_ACCURACY, TABLE2_ROWS,
                        all_table2_libraries, build_libpcre,
                        build_table2_library)
from .spec import (GeneratedFunction, GeneratedLibrary, LibrarySpec,
                   generate_library)
from .ubuntu import (CHANNEL_ARGS, CHANNEL_GLOBAL, CHANNEL_NONE,
                     TABLE1_PAPER, PopulationConfig, build_population,
                     classify_profile, no_side_effect_fraction)

__all__ = [
    "libc", "build_libc", "LIBC_SONAME",
    "LibrarySpec", "GeneratedLibrary", "GeneratedFunction",
    "generate_library",
    "TABLE2_ROWS", "TABLE2_PAPER_ACCURACY", "EFFICIENCY_LADDER",
    "build_table2_library", "all_table2_libraries", "build_libpcre",
    "man_page_for", "manual_for_library",
    "PopulationConfig", "TABLE1_PAPER", "build_population",
    "classify_profile", "no_side_effect_fraction",
    "CHANNEL_NONE", "CHANNEL_GLOBAL", "CHANNEL_ARGS",
]
