"""libapr / libaprutil — the Apache Portable Runtime stand-ins (§6.4).

Table 3's overhead experiment shims three libraries simultaneously: GNU
libc plus the two APR libraries ("medium-sized, totaling a little over
1,000 functions").  These MinC libraries wrap libc through *imports*, so
with a shim preloaded, APR's PLT entries resolve to the interceptor —
demonstrating §5.1's claim that "interceptors for multiple libraries can
coexist ... transparently".

Function count is scaled down (~40 wrappers + generated padding) but the
call topology (app → aprutil → apr → libc) matches.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..platform import Platform
from ..toolchain import GroundTruth, LibraryBuilder, minc
from ..toolchain.builder import BuiltLibrary

APR_SONAME = "libapr-1.so"
APRUTIL_SONAME = "libaprutil-1.so"

#: apr function -> (libc function, parameter count)
_APR_WRAPPERS: Tuple[Tuple[str, str, int], ...] = (
    ("apr_file_open", "open", 3),
    ("apr_file_close", "close", 1),
    ("apr_file_read", "read", 3),
    ("apr_file_write", "write", 3),
    ("apr_file_seek", "lseek", 3),
    ("apr_file_sync", "fsync", 1),
    ("apr_file_remove", "unlink", 1),
    ("apr_dir_make", "mkdir", 2),
    ("apr_dir_remove", "rmdir", 1),
    ("apr_stat", "stat", 2),
    ("apr_palloc", "malloc", 1),
    ("apr_pfree", "free", 1),
    ("apr_pcalloc", "calloc", 2),
    ("apr_socket_create", "socket", 3),
    ("apr_socket_bind", "bind", 3),
    ("apr_socket_listen", "listen", 2),
    ("apr_socket_accept", "accept", 3),
    ("apr_socket_connect", "connect", 3),
    ("apr_socket_send", "send", 4),
    ("apr_socket_recv", "recv", 4),
    ("apr_sleep", "sleep", 1),
)

_APRUTIL_WRAPPERS: Tuple[Tuple[str, str, int], ...] = (
    ("apr_brigade_write", "apr_file_write", 3),
    ("apr_brigade_read", "apr_file_read", 3),
    ("apr_bucket_alloc", "apr_palloc", 1),
    ("apr_bucket_free", "apr_pfree", 1),
    ("apr_uri_stat", "apr_stat", 2),
    ("apr_sendfile", "apr_socket_send", 4),
)


def _forwarder(target: str, nparams: int) -> Tuple[minc.Stmt, ...]:
    args = tuple(minc.Param(i) for i in range(nparams))
    return (minc.Return(minc.Call(target, args)),)


def _pad_functions(builder: LibraryBuilder, prefix: str, count: int) -> None:
    """Utility padding functions, like real APR's string/table helpers."""
    for i in range(count):
        builder.simple(
            f"{prefix}_util{i}", 1,
            minc.Assign("x", minc.BinOp("+", minc.Param(0),
                                        minc.Const(i + 1))),
            minc.Return(minc.Local("x")),
            truth=GroundTruth())


def build_apr(platform: Platform) -> BuiltLibrary:
    builder = LibraryBuilder(APR_SONAME, needed=("libc.so.6",))
    for name, target, nparams in _APR_WRAPPERS:
        builder.simple(name, nparams, *_forwarder(target, nparams),
                       truth=GroundTruth(error_returns=[-1]))
    _pad_functions(builder, "apr", 14)
    return builder.build(platform)


def build_aprutil(platform: Platform) -> BuiltLibrary:
    builder = LibraryBuilder(APRUTIL_SONAME,
                             needed=(APR_SONAME, "libc.so.6"))
    for name, target, nparams in _APRUTIL_WRAPPERS:
        builder.simple(name, nparams, *_forwarder(target, nparams),
                       truth=GroundTruth(error_returns=[-1]))
    _pad_functions(builder, "aprutil", 10)
    return builder.build(platform)


_CACHE: Dict[Tuple[str, str], BuiltLibrary] = {}


def apr(platform: Platform) -> BuiltLibrary:
    key = ("apr", platform.name)
    if key not in _CACHE:
        _CACHE[key] = build_apr(platform)
    return _CACHE[key]


def aprutil(platform: Platform) -> BuiltLibrary:
    key = ("aprutil", platform.name)
    if key not in _CACHE:
        _CACHE[key] = build_aprutil(platform)
    return _CACHE[key]
