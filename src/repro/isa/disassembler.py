"""Disassembly listings in the style of ``objdump -d``.

The LFI profiler is "loosely coupled" to its disassembler (§3.1); this
module is our pluggable disassembler.  It produces both a structured form
(:class:`~repro.isa.instructions.Decoded` records, used by the CFG
builder) and human-readable listings like the one in Figure 2 of the
paper (used by examples and debugging).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .abi import Abi
from .encoder import decode_range
from .instructions import Decoded
from .operands import ImportSlot, Rel


def disassemble(code: bytes, abi: Abi, *, start: int = 0,
                end: Optional[int] = None) -> List[Decoded]:
    """Linear-sweep disassembly of a code range."""
    return decode_range(code, start, len(code) if end is None else end, abi)


def format_listing(decoded: List[Decoded], *,
                   symbols: Optional[Dict[int, str]] = None,
                   imports: Optional[List[str]] = None) -> str:
    """Render a listing with resolved branch targets and import names.

    ``symbols`` maps addresses to names (function entry points); when a
    branch target or listing address matches one, the name is shown the
    way ``objdump`` annotates ``<symbol+off>``.
    """
    symbols = symbols or {}
    lines: List[str] = []
    known = sorted(symbols)
    for d in decoded:
        if d.addr in symbols:
            lines.append(f"{d.addr:08x} <{symbols[d.addr]}>:")
        text = d.insn.render()
        if d.insn.operands and isinstance(d.insn.operands[0], Rel):
            target = d.branch_target()
            annot = _symbolize(target, symbols, known)
            text = f"{d.insn.mnemonic} {target:#x}{annot}"
        elif d.insn.operands and isinstance(d.insn.operands[0], ImportSlot):
            slot = d.insn.operands[0].slot
            if imports and slot < len(imports):
                text = f"{d.insn.mnemonic} <{imports[slot]}@plt>"
        lines.append(f"{d.addr:8x}:\t{text}")
    return "\n".join(lines)


def _symbolize(addr: int, symbols: Dict[int, str], known: List[int]) -> str:
    if addr in symbols:
        return f" <{symbols[addr]}>"
    # find the nearest preceding symbol, objdump-style <sym+0x...>
    lo, hi = 0, len(known)
    while lo < hi:
        mid = (lo + hi) // 2
        if known[mid] <= addr:
            lo = mid + 1
        else:
            hi = mid
    if lo:
        base = known[lo - 1]
        return f" <{symbols[base]}+{addr - base:#x}>"
    return ""
