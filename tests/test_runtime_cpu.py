"""CPU interpreter: flags, control transfer, host functions, shadow stack."""

import pytest

from repro.errors import IllegalInstruction, MemoryFault, RuntimeFault
from repro.isa import Imm, Label, Mem, Reg, assemble, ins, label
from repro.kernel import Kernel
from repro.platform import LINUX_X86
from repro.runtime import Process
from repro.runtime.cpu import sgn32
from repro.binfmt import SharedObject, Symbol


def _proc_with_code(items, exports=("f",)):
    """Assemble raw items into a one-function image and load it."""
    from repro.isa.assembler import collect_labels
    text = assemble(items, __import__("repro.isa", fromlist=["X86SIM"]).X86SIM)
    labels = collect_labels(items)
    syms = tuple(Symbol(name, labels[name], len(text) - labels[name])
                 for name in exports)
    image = SharedObject(soname="libraw.so", machine="x86sim", text=text,
                         exports=syms)
    proc = Process(Kernel(), LINUX_X86)
    proc.load(image)
    return proc


class TestSgn32:
    def test_positive(self):
        assert sgn32(5) == 5

    def test_negative_pattern(self):
        assert sgn32(0xFFFFFFFF) == -1
        assert sgn32(0x80000000) == -(1 << 31)

    def test_wraps_input(self):
        assert sgn32((1 << 32) + 7) == 7


class TestArithmeticAndFlags:
    def test_signed_compare_large_values(self):
        # jl must behave signed: -1 < 1 even though 0xFFFFFFFF > 1 unsigned
        items = [
            label("f"),
            ins("mov", Reg("eax"), Imm(-1)),
            ins("cmp", Reg("eax"), Imm(1)),
            ins("jl", Label("less")),
            ins("mov", Reg("eax"), Imm(0)),
            ins("ret"),
            label("less"),
            ins("mov", Reg("eax"), Imm(1)),
            ins("ret"),
        ]
        proc = _proc_with_code(items)
        assert proc.libcall("f") == 1

    def test_neg_and_flags(self):
        items = [
            label("f"),
            ins("mov", Reg("eax"), Imm(5)),
            ins("neg", Reg("eax")),
            ins("ret"),
        ]
        assert _proc_with_code(items).libcall("f") == -5

    def test_imul(self):
        items = [
            label("f"),
            ins("mov", Reg("eax"), Imm(-6)),
            ins("mov", Reg("ecx"), Imm(7)),
            ins("imul", Reg("eax"), Reg("ecx")),
            ins("ret"),
        ]
        assert _proc_with_code(items).libcall("f") == -42

    def test_or_minus_one_idiom(self):
        items = [
            label("f"),
            ins("mov", Reg("eax"), Imm(12345)),
            ins("or", Reg("eax"), Imm(-1)),
            ins("ret"),
        ]
        assert _proc_with_code(items).libcall("f") == -1

    def test_xor_self_zeroes(self):
        items = [
            label("f"),
            ins("mov", Reg("eax"), Imm(77)),
            ins("xor", Reg("eax"), Reg("eax")),
            ins("ret"),
        ]
        assert _proc_with_code(items).libcall("f") == 0


class TestStackAndCalls:
    def test_push_pop(self):
        items = [
            label("f"),
            ins("push", Imm(11)),
            ins("push", Imm(22)),
            ins("pop", Reg("eax")),
            ins("pop", Reg("ecx")),
            ins("add", Reg("eax"), Reg("ecx")),
            ins("ret"),
        ]
        assert _proc_with_code(items).libcall("f") == 33

    def test_call_ret_nesting(self):
        items = [
            label("f"),
            ins("call", Label("inner")),
            ins("add", Reg("eax"), Imm(1)),
            ins("ret"),
            label("inner"),
            ins("mov", Reg("eax"), Imm(41)),
            ins("ret"),
        ]
        assert _proc_with_code(items).libcall("f") == 42

    def test_shadow_stack_balanced_after_call(self):
        items = [
            label("f"),
            ins("call", Label("inner")),
            ins("ret"),
            label("inner"),
            ins("ret"),
        ]
        proc = _proc_with_code(items)
        proc.libcall("f")
        assert proc.cpu.shadow == []

    def test_leave_restores_frame(self):
        items = [
            label("f"),
            ins("push", Reg("ebp")),
            ins("mov", Reg("ebp"), Reg("esp")),
            ins("sub", Reg("esp"), Imm(32)),
            ins("mov", Reg("eax"), Imm(9)),
            ins("leave"),
            ins("ret"),
        ]
        proc = _proc_with_code(items)
        sp_before = proc.cpu.regs["esp"]
        assert proc.libcall("f") == 9
        assert proc.cpu.regs["esp"] == sp_before

    def test_indirect_call_through_register(self):
        from repro.isa import LabelImm
        from repro.layout import FIRST_MODULE_BASE
        items = [
            label("f"),
            ins("mov", Reg("ecx"), LabelImm("inner")),
            ins("add", Reg("ecx"), Imm(FIRST_MODULE_BASE)),
            ins("call", Reg("ecx")),
            ins("ret"),
            label("inner"),
            ins("mov", Reg("eax"), Imm(55)),
            ins("ret"),
        ]
        proc = _proc_with_code(items)
        assert proc.libcall("f") == 55


class TestFaults:
    def test_wild_jump_faults(self):
        items = [label("f"), ins("jmp", Reg("eax")), ins("ret")]
        proc = _proc_with_code(items)
        proc.cpu.regs["eax"] = 0x12345678
        with pytest.raises(MemoryFault):
            proc.libcall("f")

    def test_hlt_is_illegal(self):
        items = [label("f"), ins("hlt")]
        with pytest.raises(IllegalInstruction):
            _proc_with_code(items).libcall("f")

    def test_step_budget(self):
        items = [label("f"), label("spin"), ins("jmp", Label("spin"))]
        proc = _proc_with_code(items)
        with pytest.raises(RuntimeFault, match="budget"):
            proc.libcall("f", max_steps=1000)

    def test_unknown_interrupt_vector(self):
        items = [label("f"), ins("int", Imm(0x21)), ins("ret")]
        with pytest.raises(IllegalInstruction):
            _proc_with_code(items).libcall("f")


class TestHostFunctions:
    def test_simple_host_returns_value(self):
        proc = Process(Kernel(), LINUX_X86)
        proc.register_host("answer", lambda p, cpu: 42)
        assert proc.libcall("answer") == 42

    def test_host_reads_arguments(self):
        proc = Process(Kernel(), LINUX_X86)
        proc.register_host("addtwo",
                           lambda p, cpu: cpu.host_arg(0) + cpu.host_arg(1))
        assert proc.libcall("addtwo", 30, 12) == 42

    def test_guest_calls_host_through_plt(self):
        items = [
            label("f"),
            ins("push", Imm(5)),
            ins("call", __import__("repro.isa",
                                   fromlist=["ImportSlot"]).ImportSlot(0)),
            ins("add", Reg("esp"), Imm(4)),
            ins("ret"),
        ]
        from repro.isa import X86SIM
        from repro.isa.assembler import collect_labels
        text = assemble(items, X86SIM)
        image = SharedObject(
            soname="libraw.so", machine="x86sim", text=text,
            exports=(Symbol("f", 0, len(text)),),
            imports=("hostfn",))
        proc = Process(Kernel(), LINUX_X86)
        proc.register_host("hostfn",
                           lambda p, cpu: cpu.host_arg(0) * 2)
        proc.load(image)
        assert proc.libcall("f", 0) == 10
