"""Pipes and sockets: short writes, EOF, connection lifecycle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.pipes import Pipe, PipeError
from repro.kernel.sockets import Endpoint, Socket, SocketError, SocketTable


class TestPipe:
    def test_roundtrip(self):
        pipe = Pipe(capacity=16)
        assert pipe.write(b"hello") == 5
        assert pipe.read(5) == b"hello"

    def test_short_write_when_nearly_full(self):
        """The §6.1 Pidgin mechanism: partial writes on a full pipe."""
        pipe = Pipe(capacity=8)
        assert pipe.write(b"123456") == 6
        assert pipe.write(b"abcdef") == 2       # only room for two bytes
        assert pipe.read(100) == b"123456ab"

    def test_eagain_when_full(self):
        pipe = Pipe(capacity=4)
        pipe.write(b"1234")
        with pytest.raises(PipeError, match="EAGAIN"):
            pipe.write(b"x")

    def test_epipe_after_reader_close(self):
        pipe = Pipe()
        pipe.close_read()
        with pytest.raises(PipeError, match="EPIPE"):
            pipe.write(b"x")

    def test_read_empty_open_is_eagain(self):
        with pytest.raises(PipeError, match="EAGAIN"):
            Pipe().read(4)

    def test_read_empty_closed_is_eof(self):
        pipe = Pipe()
        pipe.close_write()
        assert pipe.read(4) == b""

    def test_drain_after_writer_close(self):
        pipe = Pipe()
        pipe.write(b"tail")
        pipe.close_write()
        assert pipe.read(10) == b"tail"
        assert pipe.read(10) == b""

    @given(data=st.lists(st.binary(min_size=1, max_size=8), max_size=10))
    @settings(max_examples=50)
    def test_property_fifo_order(self, data):
        pipe = Pipe(capacity=1 << 16)
        for chunk in data:
            pipe.write(chunk)
        out = bytearray()
        while pipe.fill:
            out += pipe.read(3)
        assert bytes(out) == b"".join(data)


class TestSockets:
    def _pair(self):
        table = SocketTable()
        server = Socket()
        table.bind(server, 80)
        table.listen(server)
        client = Socket()
        table.connect(client, 80)
        server_end = table.accept(server)
        return table, client.endpoint, server_end

    def test_connect_and_exchange(self):
        _table, client_end, server_end = self._pair()
        client_end.send(b"GET /")
        assert server_end.recv(64) == b"GET /"
        server_end.send(b"200 OK")
        assert client_end.recv(64) == b"200 OK"

    def test_connect_refused_without_listener(self):
        table = SocketTable()
        with pytest.raises(SocketError, match="ECONNREFUSED"):
            table.connect(Socket(), 9999)

    def test_bind_conflict(self):
        table = SocketTable()
        first = Socket()
        table.bind(first, 80)
        table.listen(first)
        with pytest.raises(SocketError, match="EADDRINUSE"):
            table.bind(Socket(), 80)

    def test_accept_empty_backlog_eagain(self):
        table = SocketTable()
        server = Socket()
        table.bind(server, 80)
        table.listen(server)
        with pytest.raises(SocketError, match="EAGAIN"):
            table.accept(server)

    def test_backlog_limit_timeout(self):
        table = SocketTable()
        server = Socket()
        server.backlog_limit = 1
        table.bind(server, 80)
        table.listen(server)
        table.connect(Socket(), 80)
        with pytest.raises(SocketError, match="ETIMEDOUT"):
            table.connect(Socket(), 80)

    def test_double_connect_isconn(self):
        table, _c, _s = self._pair()
        client = Socket()
        table.connect(client, 80)
        with pytest.raises(SocketError, match="EISCONN"):
            table.connect(client, 80)

    def test_recv_after_peer_close_is_eof(self):
        _table, client_end, server_end = self._pair()
        server_end.close()
        assert client_end.recv(10) == b""

    def test_send_after_peer_close_resets(self):
        _table, client_end, server_end = self._pair()
        server_end.close()
        with pytest.raises(SocketError, match="ECONNRESET"):
            client_end.send(b"x")

    def test_send_unconnected(self):
        with pytest.raises(SocketError, match="ENOTCONN"):
            Endpoint().send(b"x")

    def test_close_unregisters_listener(self):
        table = SocketTable()
        server = Socket()
        table.bind(server, 80)
        table.listen(server)
        table.close(server)
        with pytest.raises(SocketError, match="ECONNREFUSED"):
            table.connect(Socket(), 80)

    def test_short_send_on_full_peer_buffer(self):
        _table, client_end, server_end = self._pair()
        server_end.capacity = 4
        assert client_end.send(b"123456") == 4
