"""Fault scenarios: action model, XML language, generators, presets."""

import warnings

from .generate import (derive_plan_seed, error_codes_from_profile,
                       exhaustive_plan, passthrough_plan, random_plan)
from .model import (ACTION_KINDS, INJECT_ALWAYS, INJECT_EXHAUSTIVE,
                    INJECT_NTH, INJECT_ORDINALS, INJECT_RANDOM, Action,
                    ArgModification, DelayFault, ErrorCode, FrameSpec,
                    FunctionTrigger, PartialWriteFault, Plan, ReturnFault,
                    ShortReadFault, TargetScope, action_from_token)
from .presets import (FILE_IO_FUNCTIONS, IO_FUNCTIONS, MEMORY_FUNCTIONS,
                      SOCKET_IO_FUNCTIONS, file_io_faults, io_faults,
                      memory_faults, socket_io_faults)
from .xml_io import ACCEPTED_SCHEMAS, PLAN_SCHEMA, plan_from_xml, plan_to_xml

__all__ = [
    "Plan", "FunctionTrigger", "FrameSpec", "ArgModification",
    "Action", "ACTION_KINDS", "action_from_token",
    "ReturnFault", "ErrorCode", "DelayFault", "ShortReadFault",
    "PartialWriteFault", "TargetScope",
    "INJECT_NTH", "INJECT_ALWAYS", "INJECT_RANDOM", "INJECT_EXHAUSTIVE",
    "INJECT_ORDINALS",
    "PLAN_SCHEMA", "ACCEPTED_SCHEMAS", "plan_to_xml", "plan_from_xml",
    "exhaustive_plan", "random_plan", "passthrough_plan",
    "derive_plan_seed", "error_codes_from_profile",
    "file_io_faults", "memory_faults", "socket_io_faults", "io_faults",
    "FILE_IO_FUNCTIONS", "MEMORY_FUNCTIONS", "SOCKET_IO_FUNCTIONS",
    "IO_FUNCTIONS",
]


def __getattr__(name: str):
    if name == "Fault":
        warnings.warn(
            "repro.core.scenario.Fault is deprecated and will be "
            "removed in 2.0; use ReturnFault",
            DeprecationWarning, stacklevel=2)
        return ReturnFault
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
