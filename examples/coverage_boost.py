#!/usr/bin/env python3
"""§6.1 "Improving Coverage": LFI vs. a mature regression suite.

Runs minidb's shipped test suite (all green, ~72% block coverage, like
MySQL 5.0's 73%), then re-runs it under a fully automatic random libc
faultload.  Error-handling blocks light up — the InnoDB-style insert
buffer most of all — and a few tests die of SIGSEGV on the engine's
unchecked allocations, just as 12 MySQL test cases did.

Run:  python examples/coverage_boost.py
"""

from repro import (Controller, LINUX_X86, Profiler, build_kernel_image,
                   libc, random_plan)
from repro.apps.minidb import run_suite


def main() -> None:
    print("running the shipped regression suite (no faults)...")
    baseline = run_suite(LINUX_X86)
    print(f"  {baseline.passed}/{baseline.total} tests passed")
    print(f"  overall coverage: "
          f"{100 * baseline.overall_coverage():.1f}%  (MySQL 5.0: 73%)")
    print(f"  ibuf module:      "
          f"{100 * baseline.coverage.module_coverage('ibuf'):.1f}%")

    built = libc(LINUX_X86)
    profiler = Profiler(LINUX_X86, {built.image.soname: built.image},
                        build_kernel_image(LINUX_X86))
    profiles = profiler.profile_all()
    plan = random_plan(profiles, probability=0.02, seed=2009)
    lfi = Controller(LINUX_X86, profiles, plan)

    print("\nre-running under a fully automatic random libc faultload...")
    faulted = run_suite(LINUX_X86, controller=lfi)
    print(f"  {faulted.passed} passed, {faulted.errors} query errors, "
          f"{faulted.sigsegv} SIGSEGV, {faulted.sigabrt} SIGABRT")
    if faulted.crashed_tests:
        print(f"  crashed tests (coverage not saved, as in the paper): "
              f"{', '.join(faulted.crashed_tests)}")

    base_value = baseline.overall_coverage()
    merged = baseline.coverage
    merged.merge(faulted.coverage)
    print("\ncombined coverage (suite + LFI):")
    print(merged.report())
    delta = merged.overall_coverage() - base_value
    print(f"\noverall gain: +{100 * delta:.1f}pp with no human effort "
          "(paper: 73% -> >=74%, ibuf +12pp)")


if __name__ == "__main__":
    main()
