"""Two-pass assembler: IR with symbolic labels -> flat bytes.

The toolchain's code generator emits a list of items, each either an
:class:`~repro.isa.instructions.Instruction` (whose branch operands may be
:class:`~repro.isa.operands.Label` references) or a bare label-definition
marker.  ``assemble`` lays the items out, resolves every label to a
relative displacement and returns the encoded bytes.

Because all branch operands encode as fixed-size rel32 payloads, one
measurement pass is exact — no relaxation loop needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..errors import AssemblyError
from .abi import Abi
from .encoder import encode_instruction, measure
from .instructions import Instruction
from .operands import Imm, Label, LabelImm, Operand, Rel


@dataclass(frozen=True)
class LabelDef:
    """Marks the position of a label in an instruction stream."""

    name: str


Item = Union[Instruction, LabelDef]


def label(name: str) -> LabelDef:
    """Terse constructor for label definitions."""
    return LabelDef(name)


def assemble(items: Sequence[Item], abi: Abi, *, base: int = 0) -> bytes:
    """Assemble an instruction stream to bytes.

    ``base`` is the address of the first byte within the module; label
    arithmetic is position-independent so it only matters for error
    messages and symmetry with disassembly listings.
    """
    addresses: Dict[str, int] = {}
    layout: List[Tuple[int, Instruction]] = []   # (addr, instruction)
    addr = base
    for item in items:
        if isinstance(item, LabelDef):
            if item.name in addresses:
                raise AssemblyError(f"duplicate label {item.name!r}")
            addresses[item.name] = addr
        else:
            layout.append((addr, item))
            addr += measure(item)

    out = bytearray()
    for insn_addr, insn in layout:
        size = measure(insn)
        resolved = _resolve(insn, insn_addr + size, addresses)
        encoded = encode_instruction(resolved, abi)
        if len(encoded) != size:  # pragma: no cover - invariant
            raise AssemblyError(
                f"size drift assembling {insn.render()}: "
                f"measured {size}, encoded {len(encoded)}")
        out += encoded
    return bytes(out)


def _resolve(insn: Instruction, end_addr: int,
             addresses: Dict[str, int]) -> Instruction:
    if not any(isinstance(op, (Label, LabelImm)) for op in insn.operands):
        return insn
    ops: List[Operand] = []
    for op in insn.operands:
        if isinstance(op, (Label, LabelImm)):
            try:
                target = addresses[op.name]
            except KeyError:
                raise AssemblyError(f"undefined label {op.name!r} "
                                    f"in {insn.render()}") from None
            if isinstance(op, Label):
                ops.append(Rel(target - end_addr))
            else:
                ops.append(Imm(target))
        else:
            ops.append(op)
    return Instruction(insn.mnemonic, tuple(ops))


def collect_labels(items: Iterable[Item], *, base: int = 0) -> Dict[str, int]:
    """Return the address each label would get, without encoding."""
    addresses: Dict[str, int] = {}
    addr = base
    for item in items:
        if isinstance(item, LabelDef):
            addresses[item.name] = addr
        else:
            addr += measure(item)
    return addresses


def program_size(items: Iterable[Item]) -> int:
    """Total encoded size of an instruction stream."""
    return sum(measure(i) for i in items if isinstance(i, Instruction))
