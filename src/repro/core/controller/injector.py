"""The ``__lfi_eval`` support routine the synthesized stubs call (§5.1).

Stack layout when the host routine gains control (the stub pushed its
function id and called us)::

    [sp]    return address into the stub (discarded)
    [sp+4]  function id
    [sp+8]  the application's return address (the caller of the library)
    [sp+12] stack arguments (x86 flavour; SPARC args live in o0..o5)

On a firing trigger the routine applies argument modifications and side
effects, then either places the injected return value in the ABI return
register and resumes *directly at the caller*, or restores the stack and
tail-jumps to the original function found via RTLD_NEXT — exactly the
semantics of the paper's generated C stubs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import ControllerError, LoaderError
from ...kernel.errno import errno_number
from ...obs.telemetry import NULL_TELEMETRY, as_telemetry
from ...platform import CHANNEL_GLOBAL, CHANNEL_TLS
from ..profiles import LibraryProfile
from ..scenario.model import DelayFault
from .logbook import InjectionRecord, Logbook
from .triggers import Decision, ScopeResolver, TriggerEngine


class Injector:
    """Binds a TriggerEngine to a process as the __lfi_eval host."""

    def __init__(self, engine: TriggerEngine, logbook: Logbook,
                 functions: Sequence[str],
                 telemetry=None) -> None:
        self.engine = engine
        self.logbook = logbook
        self.functions = list(functions)
        self.shim_module_index: Optional[int] = None
        self.test_id = "t0"
        self.injection_count = 0
        self.passthrough_count = 0
        self._original_cache: Dict[int, Dict[str, int]] = {}
        self.telemetry = as_telemetry(telemetry)
        self._bind_instruments()
        self._recompute_dormancy()

    def _bind_instruments(self) -> None:
        # instruments are created once here so the per-call hot path is
        # a plain method call (a no-op one under NULL_TELEMETRY)
        metrics = self.telemetry.metrics
        self._injections_metric = metrics.counter(
            "repro_injections_total", "Faults injected into return values",
            ("function", "errno"))
        self._passthrough_metric = metrics.counter(
            "repro_passthrough_firings_total",
            "Triggers that fired but let the original run", ("function",))
        self._evaluations_metric = metrics.counter(
            "repro_trigger_evaluations_total",
            "Trigger predicate evaluations", ("function",))
        self._delay_metric = metrics.counter(
            "repro_virtual_delay_ns_total",
            "Virtual nanoseconds added to the kernel clock by "
            "DelayFault injections", ("function",))
        self._partial_io_metric = metrics.counter(
            "repro_partial_io_bytes_total",
            "Bytes trimmed off transfer counts by short-read / "
            "partial-write injections", ("function",))

    def rebind(self, engine: TriggerEngine, functions: Sequence[str],
               telemetry=None) -> None:
        """Point this injector at a fresh engine, plan and telemetry.

        Snapshot replay (see ``core.exec.snapshot``) transplants
        per-case trigger state into a reused controller; the function
        list must keep the stub ids of the shim the guest already has
        loaded, which the caller guarantees by grouping cases per
        trigger function.
        """
        self.engine = engine
        self.functions = list(functions)
        self.telemetry = as_telemetry(telemetry)
        self._bind_instruments()
        self._recompute_dormancy()

    def _recompute_dormancy(self) -> None:
        """Re-derive the zero-overhead set from the bound engine.

        A function id is *dormant* when the plan provably cannot fire
        for it anymore — no triggers at all, unreachable sentinel
        ordinals, or an exhausted nth/ordinal horizon.  Dormancy is
        monotone for one engine (call counts only grow), so ids are
        added as calls prove out and the set resets only here, when a
        new engine is bound.
        """
        engine = self.engine
        self._dormant_ids = {
            fn_id for fn_id, function in enumerate(self.functions)
            if not engine.can_still_fire(function)}

    # -- host entry point ---------------------------------------------------

    def eval_host(self, proc, cpu) -> None:
        abi = cpu.abi
        sp = cpu.regs[abi.stack_pointer]
        fn_id = proc.memory.read_u32(sp + 4)
        if fn_id in self._dormant_ids:
            # zero-overhead fast path: the plan provably cannot fire for
            # this function anymore, so the call collapses to counting +
            # direct dispatch — no frames, no evaluation, no telemetry
            function = self.functions[fn_id]
            self.engine.record_dormant_call(function)
            original = self._resolve_original(proc, function)
            self._pop_shadow(cpu, 1)
            if cpu.shadow:
                cpu.shadow[-1].callee_addr = original
            cpu.force_transfer(original, sp + 8)
            return
        caller_ret = proc.memory.read_u32(sp + 8)
        try:
            function = self.functions[fn_id]
        except IndexError:
            raise ControllerError(f"stub passed bad function id {fn_id}")

        frames = (self._caller_frames(proc, caller_ret)
                  if self.engine.needs_frames else ())
        args = (self._read_args(proc, cpu, sp)
                if self.engine.needs_args else ())
        resolver = (self._scope_resolver(proc)
                    if self.engine.needs_scope else None)
        evals_before = self.engine.evaluations
        call_number, decision = self.engine.on_call(function, frames, args,
                                                    resolver)
        evaluated = self.engine.evaluations - evals_before
        if evaluated:
            self._evaluations_metric.inc(evaluated, function=function)
        if decision is not None and not frames:
            frames = self._caller_frames(proc, caller_ret)   # for the log

        if decision is not None:
            self._apply_modifications(proc, cpu, sp, decision)

        if decision is not None and decision.injects_return:
            if not self.engine.can_still_fire(function):
                self._dormant_ids.add(fn_id)
            self._log(decision, function, call_number, frames)
            self.injection_count += 1
            self._record_injection(decision, function, call_number)
            self._apply_side_effects(proc, function, decision)
            cpu.regs[abi.return_register] = decision.code.retval & 0xFFFFFFFF
            self._pop_shadow(cpu, 2)
            cpu.force_transfer(caller_ret, sp + 12)
            return

        if decision is not None and decision.action is not None \
                and decision.code is None:
            # delay / partial-I/O: perturb the call, then let the
            # original run — the fault lives in the timing or the
            # transfer size, not in the return value
            self._log(decision, function, call_number, frames)
            self.injection_count += 1
            self._record_injection(decision, function, call_number)
            self._apply_action(proc, cpu, sp, decision.action, function)
        elif decision is not None:
            self.passthrough_count += 1
            self._log(decision, function, call_number, frames)
            self._passthrough_metric.inc(function=function)
            self.telemetry.events.emit(
                "passthrough", severity="debug", function=function,
                call=call_number, test=self.test_id)
        # pass through: restore the stack and jmp to the original
        if not self.engine.can_still_fire(function):
            # the call just counted pushed every trigger past its
            # horizon; future calls take the fast path above
            self._dormant_ids.add(fn_id)
        original = self._resolve_original(proc, function)
        self._pop_shadow(cpu, 1)
        if cpu.shadow:
            cpu.shadow[-1].callee_addr = original
        cpu.force_transfer(original, sp + 8)

    # -- helpers ------------------------------------------------------------

    def _record_injection(self, decision: Decision, function: str,
                          call_number: int) -> None:
        """The injection audit trail: one counter bump + one event."""
        code = decision.code
        errno = (code.errno or "") if code else ""
        self._injections_metric.inc(function=function, errno=errno)
        payload = dict(function=function,
                       errno=(code.errno if code else None),
                       retval=(code.retval if code else None),
                       call=call_number, test=self.test_id)
        if code is None and decision.action is not None:
            # non-return faults add the action token; the classic
            # (retval, errno) event keeps its exact historical shape
            payload["action"] = decision.action.token()
        self.telemetry.events.emit("injection", **payload)

    def _apply_action(self, proc, cpu, sp: int, action,
                      function: str) -> None:
        """Physical effect of a non-return fault action."""
        if isinstance(action, DelayFault):
            # virtual time: the delay is indistinguishable from a slow
            # call because the kernel clock is the only clock there is
            proc.kernel.clock_ns += action.virtual_ns
            self._delay_metric.inc(action.virtual_ns, function=function)
            return
        # short-read / partial-write: clamp the count argument so the
        # kernel itself performs the short transfer and the guest sees
        # a legitimate partial-I/O return value
        count = self._read_one_arg(proc, cpu, sp, action.argument)
        limited = action.limit(count)
        if 0 <= limited < count:
            self._write_one_arg(proc, cpu, sp, action.argument, limited)
            self._partial_io_metric.inc(count - limited,
                                        function=function)

    @staticmethod
    def _scope_resolver(proc) -> ScopeResolver:
        """Maps a call's first argument to (path, peer port).

        A descriptor resolves through the process fd table; a value
        with no fd entry is tried as a path pointer (open/stat/unlink
        take the path first) so path scopes match those calls too.
        """
        def resolve(value: int):
            value &= 0xFFFFFFFF      # argconds read args sign-extended
            entry = proc.kstate.fds.get(value)
            if entry is not None:
                peer = None
                if entry.endpoint is not None:
                    peer = entry.endpoint.port
                elif entry.socket is not None:
                    endpoint = entry.socket.endpoint
                    peer = (endpoint.port if endpoint is not None
                            else entry.socket.port)
                return entry.path, peer
            try:
                text = proc.read_cstr(value)
            except Exception:
                return None, None
            return (text, None) if text.startswith("/") else (None, None)
        return resolve

    def _resolve_original(self, proc, function: str) -> int:
        if self.shim_module_index is None:
            raise ControllerError("injector not attached to a process")
        cache = self._original_cache.setdefault(id(proc), {})
        addr = cache.get(function)
        if addr is not None:
            return addr
        try:
            addr = proc.resolve_next(function, self.shim_module_index)
        except LoaderError:
            raise ControllerError(
                f"no original definition of {function!r} behind the shim")
        cache[function] = addr            # the stub's static original_fn_ptr
        return addr

    @staticmethod
    def _pop_shadow(cpu, count: int) -> None:
        for _ in range(count):
            if cpu.shadow:
                cpu.shadow.pop()

    def _caller_frames(self, proc,
                       caller_ret: int) -> List[Tuple[int, Optional[str]]]:
        frames = proc.backtrace_frames()
        # frames[0] is the __lfi_eval call, frames[1] the stub call whose
        # return address is the application call site; rebuild from there.
        trimmed = frames[2:] if len(frames) >= 2 else []
        return [(caller_ret, proc.symbol_for_addr(caller_ret))] + trimmed

    @staticmethod
    def _read_args(proc, cpu, sp: int, count: int = 6):
        """Live call arguments, for argcond triggers (signed 32-bit)."""
        if cpu.abi.arg_registers:
            return [_signed(cpu.regs[r])
                    for r in cpu.abi.arg_registers[:count]]
        return [proc.memory.read_i32(sp + 12 + 4 * i)
                for i in range(count)]

    @staticmethod
    def _read_one_arg(proc, cpu, sp: int, argument: int) -> int:
        """One live argument by 1-based position (signed 32-bit)."""
        if cpu.abi.arg_registers:
            return _signed(cpu.regs[cpu.abi.arg_registers[argument - 1]])
        return proc.memory.read_i32(sp + 12 + 4 * (argument - 1))

    @staticmethod
    def _write_one_arg(proc, cpu, sp: int, argument: int,
                       value: int) -> None:
        if cpu.abi.arg_registers:
            reg = cpu.abi.arg_registers[argument - 1]
            cpu.regs[reg] = value & 0xFFFFFFFF
        else:
            proc.memory.write_i32(sp + 12 + 4 * (argument - 1), value)

    def _apply_modifications(self, proc, cpu, sp: int,
                             decision: Decision) -> None:
        for mod in decision.modifications:
            if cpu.abi.arg_registers:
                reg = cpu.abi.arg_registers[mod.argument - 1]
                cpu.regs[reg] = mod.apply(
                    _signed(cpu.regs[reg])) & 0xFFFFFFFF
            else:
                addr = sp + 12 + 4 * (mod.argument - 1)
                old = proc.memory.read_i32(addr)
                proc.memory.write_i32(addr, mod.apply(old))

    def _apply_side_effects(self, proc, function: str,
                            decision: Decision) -> None:
        errno_name = decision.code.errno if decision.code else None
        if not errno_name:
            return
        value = errno_number(errno_name)
        module = self._errno_module(proc, function)
        if module is None:
            return
        image = module.image
        if proc.platform.errno_channel == CHANNEL_TLS:
            try:
                offset = image.tls_symbol("errno").offset
            except Exception:
                return
            proc.memory.write_u32(module.tls_base + offset, value)
        else:
            try:
                offset = image.data_symbol("errno").offset
            except Exception:
                return
            proc.memory.write_u32(module.data_base + offset, value)

    def _errno_module(self, proc, function: str):
        """The module whose errno the injected fault should set.

        Prefer the module that would have served the call (behind the
        shim); fall back to libc.
        """
        try:
            addr = self._resolve_original(proc, function)
            module = proc.module_for_addr(addr)
            if module is not None and (module.image.tls_symbols
                                       or module.image.data_symbols):
                return module
        except ControllerError:
            pass
        try:
            return proc.module_by_soname("libc.so.6")
        except LoaderError:
            return None

    def _log(self, decision: Decision, function: str, call_number: int,
             frames: Sequence[Tuple[int, Optional[str]]]) -> None:
        code = decision.code
        stack = tuple(
            name if name else format(addr, "#x")
            for addr, name in frames[:4])
        mods = tuple(f"arg{m.argument}{m.op}{m.value}"
                     for m in decision.modifications)
        action = decision.action
        token = (action.token()
                 if action is not None and code is None else None)
        self.logbook.log(InjectionRecord(
            sequence=self.logbook.next_sequence(),
            test_id=self.test_id,
            function=function,
            call_number=call_number,
            retval=code.retval if code else None,
            errno=code.errno if code else None,
            calloriginal=decision.calloriginal,
            modifications=mods,
            stacktrace=stack,
            action=token,
        ))


def _signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value
