"""The LFI profiler: CFGs, reverse constant propagation, side effects."""

from .cfg import BasicBlock, Cfg, CfgStats, build_cfg
from .heuristics import HeuristicConfig, apply_heuristics
from .propagation import AnalysisContext, ConstEntry, FunctionAnalysis
from .profiler import Profiler, ProfilerReport, profile_application
from .sideeffects import SideEffectScanner

__all__ = [
    "Cfg", "BasicBlock", "CfgStats", "build_cfg",
    "AnalysisContext", "FunctionAnalysis", "ConstEntry",
    "SideEffectScanner",
    "HeuristicConfig", "apply_heuristics",
    "Profiler", "ProfilerReport", "profile_application",
]
