"""Fault-profile model, XML format (§3.3) and the optional heuristics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiler import HeuristicConfig, Profiler, apply_heuristics
from repro.core.profiles import (SE_ARG, SE_GLOBAL, SE_TLS, ErrorReturn,
                                 FunctionProfile, LibraryProfile,
                                 SideEffect, merge_side_effects)
from repro.errors import ProfilerError
from repro.platform import LINUX_X86
from repro.toolchain import minc

from .helpers import build_one


def _sample_profile():
    profile = LibraryProfile(soname="libc.so.6", platform="linux-x86")
    profile.functions["close"] = FunctionProfile(
        name="close",
        error_returns=[
            ErrorReturn(-1, (SideEffect(SE_TLS, "libc.so.6", offset=0x10,
                                        values=(-9, -5, -4)),)),
            ErrorReturn(0),
        ])
    profile.functions["ioctl"] = FunctionProfile(
        name="ioctl",
        error_returns=[ErrorReturn(-1, (
            SideEffect(SE_ARG, "libc.so.6", arg_index=2, values=(-5,)),))],
        indirect_influence=True)
    return profile


class TestXml:
    def test_paper_shape(self):
        xml = _sample_profile().to_xml()
        assert "<profile" in xml
        assert '<function name="close">' in xml
        assert '<error-codes retval="-1">' in xml
        assert 'type="TLS"' in xml
        assert 'module="libc.so.6"' in xml
        assert ">-9<" in xml.replace("\n", "").replace(" ", "")

    def test_roundtrip(self):
        profile = _sample_profile()
        again = LibraryProfile.from_xml(profile.to_xml())
        assert again.soname == profile.soname
        assert set(again.functions) == set(profile.functions)
        close = again.function("close")
        assert sorted(close.retvals()) == [-1, 0]
        effect = close.find(-1).side_effects[0]
        assert effect.kind == SE_TLS
        assert set(effect.values) == {-9, -5, -4}
        assert again.function("ioctl").indirect_influence

    def test_arg_effect_roundtrip(self):
        again = LibraryProfile.from_xml(_sample_profile().to_xml())
        effect = again.function("ioctl").find(-1).side_effects[0]
        assert effect.kind == SE_ARG and effect.arg_index == 2

    def test_bad_xml_rejected(self):
        with pytest.raises(ProfilerError):
            LibraryProfile.from_xml("not xml at all <")

    def test_wrong_root_rejected(self):
        with pytest.raises(ProfilerError):
            LibraryProfile.from_xml("<plan/>")

    def test_unknown_function_lookup(self):
        with pytest.raises(ProfilerError):
            _sample_profile().function("ghost")

    @given(retvals=st.lists(st.integers(-100, 100), min_size=1,
                            max_size=6, unique=True))
    @settings(max_examples=40)
    def test_property_retvals_roundtrip(self, retvals):
        profile = LibraryProfile(soname="l.so", platform="p")
        profile.functions["f"] = FunctionProfile(
            name="f", error_returns=[ErrorReturn(v) for v in retvals])
        again = LibraryProfile.from_xml(profile.to_xml())
        assert sorted(again.function("f").retvals()) == sorted(retvals)


class TestMergeSideEffects:
    def test_same_location_unions_values(self):
        a = SideEffect(SE_TLS, "l.so", offset=0x10, values=(-9,))
        b = SideEffect(SE_TLS, "l.so", offset=0x10, values=(-5, -9))
        merged = merge_side_effects([a, b])
        assert len(merged) == 1
        assert set(merged[0].values) == {-9, -5}

    def test_distinct_locations_kept(self):
        a = SideEffect(SE_TLS, "l.so", offset=0x10, values=(-9,))
        b = SideEffect(SE_GLOBAL, "l.so", offset=0x0, values=(-9,))
        assert len(merge_side_effects([a, b])) == 2


class TestHeuristics:
    def _profile(self, values, name="f"):
        profile = LibraryProfile(soname="l.so", platform="p")
        profile.functions[name] = FunctionProfile(
            name=name, error_returns=[ErrorReturn(v) for v in values])
        return profile

    def test_disabled_by_default(self):
        config = HeuristicConfig.default()
        assert not config.drop_success_returns
        assert not config.drop_predicates
        profile = self._profile([-1, 0])
        out = apply_heuristics(profile, config, function_sizes={},
                               function_calls={})
        assert out.function("f").retvals() == [-1, 0]

    def test_success_filter_drops_zero_when_multiple(self):
        out = apply_heuristics(
            self._profile([-1, 0]),
            HeuristicConfig(drop_success_returns=True),
            function_sizes={}, function_calls={})
        assert out.function("f").retvals() == [-1]

    def test_success_filter_keeps_lone_zero(self):
        """A lone 0 is likely a NULL-pointer error return (§3.1)."""
        out = apply_heuristics(
            self._profile([0]),
            HeuristicConfig(drop_success_returns=True),
            function_sizes={}, function_calls={})
        assert out.function("f").retvals() == [0]

    def test_predicate_filter_drops_isfile_style(self):
        out = apply_heuristics(
            self._profile([0, 1]),
            HeuristicConfig(drop_predicates=True),
            function_sizes={"f": 10}, function_calls={"f": 0})
        assert out.function("f").retvals() == []

    def test_predicate_filter_spares_big_functions(self):
        out = apply_heuristics(
            self._profile([0, 1]),
            HeuristicConfig(drop_predicates=True),
            function_sizes={"f": 500}, function_calls={"f": 0})
        assert out.function("f").retvals() == [0, 1]

    def test_predicate_filter_spares_callers(self):
        out = apply_heuristics(
            self._profile([0, 1]),
            HeuristicConfig(drop_predicates=True),
            function_sizes={"f": 10}, function_calls={"f": 2})
        assert out.function("f").retvals() == [0, 1]


class TestProfilerFacade:
    def test_profile_library_unknown_soname(self, libc_linux):
        profiler = Profiler(LINUX_X86,
                            {libc_linux.image.soname: libc_linux.image})
        with pytest.raises(ProfilerError):
            profiler.profile_library("ghost.so")

    def test_report_populated(self, libc_linux, kernel_image_linux):
        profiler = Profiler(LINUX_X86,
                            {libc_linux.image.soname: libc_linux.image},
                            kernel_image_linux)
        profiler.profile_library(libc_linux.image.soname)
        report = profiler.last_report
        assert report.functions_analyzed == len(libc_linux.image.exports)
        assert report.seconds > 0
        assert report.max_hops <= 3       # §6.2: "always 3 or less"

    def test_stripped_library_profiles_identically(
            self, libc_linux, kernel_image_linux):
        """§3.1: LFI works on stripped and unstripped binaries."""
        stripped = libc_linux.image.stripped()
        p1 = Profiler(LINUX_X86, {"libc.so.6": libc_linux.image},
                      kernel_image_linux).profile_library("libc.so.6")
        p2 = Profiler(LINUX_X86, {"libc.so.6": stripped},
                      kernel_image_linux).profile_library("libc.so.6")
        for name in p1.functions:
            assert sorted(p1.function(name).retvals()) == \
                sorted(p2.function(name).retvals())
