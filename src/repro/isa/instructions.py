"""Instruction model and mnemonic table.

The instruction set is a compact x86-flavoured subset — enough for the
compiler output patterns the LFI profiler must understand (§3.1/§3.2):
conditional control flow, call/ret, stack frames, constant moves, the
position-independent-code ``call``/``pop`` idiom, TLS-segment stores, and
``int`` for system calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import AssemblyError
from .operands import Operand

#: mnemonic -> operand count.  The order of this table defines opcode
#: numbers for the byte encoding, so APPEND ONLY.
MNEMONICS = (
    ("mov", 2),
    ("lea", 2),
    ("add", 2),
    ("sub", 2),
    ("and", 2),
    ("or", 2),
    ("xor", 2),
    ("neg", 1),
    ("not", 1),
    ("inc", 1),
    ("dec", 1),
    ("cmp", 2),
    ("test", 2),
    ("push", 1),
    ("pop", 1),
    ("jmp", 1),
    ("jz", 1),
    ("jnz", 1),
    ("js", 1),
    ("jns", 1),
    ("jl", 1),
    ("jle", 1),
    ("jg", 1),
    ("jge", 1),
    ("call", 1),
    ("ret", 0),
    ("leave", 0),
    ("nop", 0),
    ("int", 1),
    ("hlt", 0),
    ("imul", 2),
    ("shl", 2),
    ("shr", 2),
)

OPCODE_OF = {name: i for i, (name, _arity) in enumerate(MNEMONICS)}
ARITY_OF = {name: arity for name, arity in MNEMONICS}

#: Conditional branches (one Rel operand, fall through possible).
CONDITIONAL_BRANCHES = frozenset(
    {"jz", "jnz", "js", "jns", "jl", "jle", "jg", "jge"})

#: jcc mnemonic -> taken-predicate over the (ZF, SF) flag pair.  The
#: single source of branch semantics: the per-instruction interpreter
#: indexes it on every conditional jump and the block compiler bakes the
#: predicate into fused compare-and-branch closures.  (Signed compares
#: set SF from the *un-wrapped* difference, so jl ≡ js and jge ≡ jns.)
JCC_TAKEN = {
    "jz": lambda zf, sf: zf,
    "jnz": lambda zf, sf: not zf,
    "js": lambda zf, sf: sf,
    "jns": lambda zf, sf: not sf,
    "jl": lambda zf, sf: sf,
    "jge": lambda zf, sf: not sf,
    "jle": lambda zf, sf: sf or zf,
    "jg": lambda zf, sf: not sf and not zf,
}

#: Instructions that never fall through to the next instruction.
TERMINATORS = frozenset({"jmp", "ret", "hlt"})

#: Instructions that transfer control somewhere (incl. call).
CONTROL_FLOW = CONDITIONAL_BRANCHES | TERMINATORS | {"call"}


@dataclass(frozen=True)
class Instruction:
    """A single decoded or to-be-encoded instruction."""

    mnemonic: str
    operands: Tuple[Operand, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.mnemonic not in ARITY_OF:
            raise AssemblyError(f"unknown mnemonic {self.mnemonic!r}")
        if len(self.operands) != ARITY_OF[self.mnemonic]:
            raise AssemblyError(
                f"{self.mnemonic} takes {ARITY_OF[self.mnemonic]} operands, "
                f"got {len(self.operands)}")

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in CONDITIONAL_BRANCHES or self.mnemonic == "jmp"

    @property
    def is_conditional(self) -> bool:
        return self.mnemonic in CONDITIONAL_BRANCHES

    @property
    def is_terminator(self) -> bool:
        return self.mnemonic in TERMINATORS

    def render(self) -> str:
        if not self.operands:
            return self.mnemonic
        ops = ", ".join(op.render() for op in self.operands)
        return f"{self.mnemonic} {ops}"


def ins(mnemonic: str, *operands: Operand) -> Instruction:
    """Terse constructor used throughout the code generator."""
    return Instruction(mnemonic, tuple(operands))


@dataclass(frozen=True)
class Decoded:
    """An instruction as it appears in a disassembly listing."""

    addr: int                 # module-relative address of the instruction
    size: int                 # encoded size in bytes
    insn: Instruction

    @property
    def end(self) -> int:
        return self.addr + self.size

    def branch_target(self) -> int:
        """Absolute (module-relative) target of a direct branch/call."""
        from .operands import Rel

        (op,) = self.insn.operands
        if not isinstance(op, Rel):
            raise AssemblyError(
                f"{self.insn.mnemonic} at {self.addr:#x} has no direct target")
        return self.end + op.disp

    def render(self) -> str:
        return f"{self.addr:8x}:  {self.insn.render()}"
