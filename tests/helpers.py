"""Shared test helpers: compile-and-run MinC snippets on the VM."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.corpus.libc import libc
from repro.kernel import Kernel
from repro.platform import LINUX_X86, Platform
from repro.runtime import Process
from repro.toolchain import LibraryBuilder, minc


def build_one(name: str, nparams: int, *stmts: minc.Stmt,
              platform: Platform = LINUX_X86,
              soname: str = "libt.so",
              extra=None, globals_=(), needed=()):
    """Compile a single-function library (plus optional extra functions)."""
    builder = LibraryBuilder(soname, globals_=globals_, needed=needed)
    builder.simple(name, nparams, *stmts)
    if extra:
        for fn_def in extra:
            builder.add(fn_def)
    return builder.build(platform).image


def run_one(name: str, nparams: int, *stmts: minc.Stmt,
            args: Sequence[int] = (),
            platform: Platform = LINUX_X86,
            with_libc: bool = False,
            kernel: Optional[Kernel] = None,
            extra=None, globals_=()):
    """Compile, load and call one function; returns (result, process)."""
    needed = ("libc.so.6",) if with_libc else ()
    image = build_one(name, nparams, *stmts, platform=platform,
                      extra=extra, globals_=globals_, needed=needed)
    proc = Process(kernel or Kernel(os_name=platform.os), platform)
    images = [image]
    if with_libc:
        images.append(libc(platform).image)
    proc.load_program(images)
    result = proc.libcall(name, *args)
    return result, proc
