#!/usr/bin/env python3
"""A systematic per-fault campaign against the database engine.

Enumerates every (libc function, error code) pair the workload touches
and runs the OLTP mix once per fault — the exhaustive counterpart of
the random §6.1 runs, and the source of the per-test-case replay
scripts §5.2 describes.  The output is minidb's fault-tolerance matrix:
which injected errno on which call does it survive, report, or crash on?

Run:  python examples/systematic_campaign.py
"""

from repro import (LINUX_X86, Kernel, Profiler, build_kernel_image, libc)
from repro.apps.minidb import DbError, MiniDB
from repro.core.campaign import enumerate_cases, run_campaign


def factory(lfi):
    def session():
        db = MiniDB(Kernel(), LINUX_X86, controller=lfi)
        try:
            db.execute("create table t k v")
            for i in range(6):
                db.execute(f"insert into t {i} value{i}")
            db.execute("select from t where k 3")
            db.execute("update t 1 patched")
            db.execute("delete from t 5")
            db.checkpoint()
        except DbError:
            return 1          # graceful: the engine reported the fault
        return 0
    return session


def main() -> None:
    built = libc(LINUX_X86)
    profiler = Profiler(LINUX_X86, {built.image.soname: built.image},
                        build_kernel_image(LINUX_X86))
    profiles = profiler.profile_all()

    functions = ["open", "read", "write", "close", "lseek", "fsync",
                 "ftruncate", "malloc"]
    cases = enumerate_cases(profiles, functions=functions,
                            call_ordinals=(1, 4))
    print(f"running {len(cases)} systematic fault cases "
          f"({len(functions)} functions x codes x 2 call ordinals)...\n")

    report = run_campaign("minidb", factory, LINUX_X86, profiles, cases)
    print(report.render())

    crashes = report.crashes()
    if crashes:
        print("\ncrashing cases (candidates for the bug tracker):")
        for result in crashes:
            print(f"  {result.case.case_id()}: {result.outcome.status} "
                  f"— {result.outcome.detail[:60]}")
        print("\neach has a replay script; e.g. the first one:")
        print(crashes[0].outcome.replay_xml)


if __name__ == "__main__":
    main()
