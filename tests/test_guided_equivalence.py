"""Differential equivalence for coverage-guided campaigns.

Guided scheduling is adaptive, but it must not be *nondeterministic*:
the frontier applies coverage feedback only between fixed-width
batches, so the schedule is a pure function of the case list and the
per-case coverage.  These tests pin that contract down — the same seed
case list produces the identical schedule on the serial, thread and
process backends, and resuming an interrupted guided campaign replays
the scheduler decision-for-decision, converging on a byte-identical
failure-mode matrix.

CI runs this file with ``-rs`` and fails the job if any test here is
skipped — the guarantee must actually be exercised, not waved through.
"""

from __future__ import annotations

import pytest

from tests.test_resume_equivalence import (_assert_identical,
                                           _event_fingerprint)

from repro.core.campaign import FaultCase, run_campaign
from repro.core.results import ResultStore, matrix_from_store
from repro.core.scenario import ErrorCode
from repro.kernel import Kernel, O_CREAT, O_RDWR
from repro.obs import MemorySink, Telemetry
from repro.platform import LINUX_X86

#: The seed search space: 3 functions × 2 errnos × 4 ordinals.  The
#: workload writes 3 times, so the frontier's golden bound prunes the
#: ordinal axis hard (open/close are called once) and a guided run
#: executes 10 of the 24 cells.
_CASES = [FaultCase(fn, ErrorCode(-1, errno), ordinal)
          for fn in ("open", "write", "close")
          for errno in ("EIO", "EACCES")
          for ordinal in (1, 2, 3, 4)]
_INTERRUPT_AFTER = 3


def _factory(libc_linux):
    def factory(lfi):
        def session():
            proc = lfi.make_process(Kernel(), [libc_linux.image])
            fd = proc.libcall("open", proc.cstr("/f"),
                              O_CREAT | O_RDWR, 0o644)
            if fd < 0:
                return 1
            buf = proc.scratch_alloc(4)
            proc.mem_write(buf, b"data")
            for _ in range(3):
                if proc.libcall("write", fd, buf, 4) != 4:
                    return 1
            return 1 if proc.libcall("close", fd) != 0 else 0
        return session
    return factory


def _run(libc_linux, profiles, store, *, backend, jobs, resume=False,
         budget=None):
    sink = MemorySink()
    tele = Telemetry(sinks=[sink])
    report = run_campaign("guided-equiv", _factory(libc_linux),
                          LINUX_X86, profiles, _CASES, jobs=jobs,
                          backend=backend, telemetry=tele,
                          results=store,
                          results_key={"app": "guided-equiv"},
                          resume=resume, guided=True,
                          budget_cases=budget)
    return report, sink


def _schedule(report):
    return [r.case.case_id() for r in report.results]


def _interrupted_store(reference_store, tmp_path):
    """The reference journal cut off the way a crash leaves it: the
    first N records survive, record N+1 is a torn fragment."""
    (key_dir,) = [p for p in reference_store.root.iterdir()
                  if p.is_dir()]
    lines = (key_dir / "journal.jsonl").read_text().splitlines()
    assert len(lines) > _INTERRUPT_AFTER
    cut = ResultStore(tmp_path / "interrupted")
    cut_dir = cut.root / key_dir.name
    cut_dir.mkdir()
    torn = lines[_INTERRUPT_AFTER][:40]
    (cut_dir / "journal.jsonl").write_text(
        "\n".join(lines[:_INTERRUPT_AFTER]) + "\n" + torn)
    return cut


class TestGuidedScheduleDeterminism:
    def test_schedule_identical_across_backends(self, tmp_path,
                                                libc_linux,
                                                libc_profiles_linux):
        runs = {}
        for backend, jobs in (("serial", 1), ("thread", 3),
                              ("process", 2)):
            store = ResultStore(tmp_path / backend)
            report, _ = _run(libc_linux, libc_profiles_linux, store,
                             backend=backend, jobs=jobs)
            runs[backend] = (report, store)
        serial, serial_store = runs["serial"]
        # the scheduler actually schedules (pruning happened)
        assert 0 < len(serial.results) < len(_CASES)
        reference_matrix = matrix_from_store(serial_store).to_json()
        for backend in ("thread", "process"):
            report, store = runs[backend]
            assert _schedule(report) == _schedule(serial), backend
            _assert_identical(serial, report)
            assert matrix_from_store(store).to_json() \
                == reference_matrix, backend

    def test_guided_schedule_is_repeatable(self, tmp_path, libc_linux,
                                           libc_profiles_linux):
        a, sink_a = _run(libc_linux, libc_profiles_linux,
                         ResultStore(tmp_path / "a"),
                         backend="serial", jobs=1)
        b, sink_b = _run(libc_linux, libc_profiles_linux,
                         ResultStore(tmp_path / "b"),
                         backend="serial", jobs=1)
        assert _schedule(a) == _schedule(b)
        assert _event_fingerprint(sink_a.events) == \
            _event_fingerprint(sink_b.events)


class TestGuidedResume:
    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1), ("thread", 3), ("process", 2)])
    def test_interrupted_resume_converges(self, backend, jobs, tmp_path,
                                          libc_linux,
                                          libc_profiles_linux):
        reference_store = ResultStore(tmp_path / "reference")
        reference, ref_sink = _run(libc_linux, libc_profiles_linux,
                                   reference_store, backend=backend,
                                   jobs=jobs)
        assert reference.resumed == {"skipped": 0,
                                     "replayed": len(reference.results)}

        cut = _interrupted_store(reference_store, tmp_path)
        resumed, sink = _run(libc_linux, libc_profiles_linux, cut,
                             backend=backend, jobs=jobs, resume=True)
        assert resumed.resumed == {
            "skipped": _INTERRUPT_AFTER,
            "replayed": len(reference.results) - _INTERRUPT_AFTER}
        # the resumed scheduler replays the original decisions exactly
        assert _schedule(resumed) == _schedule(reference)
        _assert_identical(reference, resumed)
        assert matrix_from_store(cut).to_json() == \
            matrix_from_store(reference_store).to_json()
        assert _event_fingerprint(ref_sink.events) == \
            _event_fingerprint(sink.events)

    def test_cross_backend_resume(self, tmp_path, libc_linux,
                                  libc_profiles_linux):
        """A guided journal written serially resumes under process."""
        reference_store = ResultStore(tmp_path / "reference")
        reference, _ = _run(libc_linux, libc_profiles_linux,
                            reference_store, backend="serial", jobs=1)
        cut = _interrupted_store(reference_store, tmp_path)
        resumed, _ = _run(libc_linux, libc_profiles_linux, cut,
                          backend="process", jobs=2, resume=True)
        assert _schedule(resumed) == _schedule(reference)
        _assert_identical(reference, resumed)
        assert matrix_from_store(cut).to_json() == \
            matrix_from_store(reference_store).to_json()

    def test_completed_campaign_resumes_without_rerunning(
            self, tmp_path, libc_linux, libc_profiles_linux):
        store = ResultStore(tmp_path / "s")
        reference, _ = _run(libc_linux, libc_profiles_linux, store,
                            backend="serial", jobs=1)
        resumed, _ = _run(libc_linux, libc_profiles_linux, store,
                          backend="serial", jobs=1, resume=True)
        assert resumed.resumed == {"skipped": len(reference.results),
                                   "replayed": 0}
        assert _schedule(resumed) == _schedule(reference)


class TestGuidedBudget:
    def test_budget_truncates_deterministically(self, tmp_path,
                                                libc_linux,
                                                libc_profiles_linux):
        full, _ = _run(libc_linux, libc_profiles_linux,
                       ResultStore(tmp_path / "full"),
                       backend="serial", jobs=1)
        capped, _ = _run(libc_linux, libc_profiles_linux,
                         ResultStore(tmp_path / "capped"),
                         backend="serial", jobs=1, budget=4)
        assert len(capped.results) == 4
        # the budget clips the same schedule, it doesn't reshuffle it
        assert _schedule(capped) == _schedule(full)[:4]
