"""Extensions beyond the paper's prototype, and ablation switches.

* Argument-condition inference — §3.1's stated future work ("inferring
  the relationship between arguments can be done using symbolic
  execution, but the current LFI prototype does not support this yet").
* ``argcond`` trigger conditions in the scenario language, so a fault
  fires only for specific live argument values.
* The ``use_edge_constraints`` ablation: turning off path sensitivity
  shows why the analysis needs it (kernel error constants leak into
  syscall wrappers' success paths).
"""

import pytest

from repro.core.profiler import AnalysisContext, Profiler
from repro.core.profiles import ArgCondition, LibraryProfile
from repro.core.scenario import (ErrorCode, FunctionTrigger, Plan,
                                 plan_from_xml, plan_to_xml)
from repro.core.controller import Controller, TriggerEngine
from repro.kernel import Kernel, O_CREAT, O_RDWR, errno_number
from repro.platform import LINUX_X86
from repro.toolchain import minc

from .helpers import build_one


def _analyze_with_conditions(*stmts, nparams=1):
    image = build_one("f", nparams, *stmts)
    ctx = AnalysisContext(LINUX_X86, {image.soname: image},
                          infer_arg_conditions=True)
    return ctx.analyze_function(image.soname,
                                image.find_export("f").offset)


class TestArgConditionInference:
    def test_equality_guard_inferred(self):
        analysis = _analyze_with_conditions(
            minc.If(minc.Cond("==", minc.Param(0), minc.Const(1000)),
                    minc.body(minc.Return(minc.Const(-9)))),
            minc.Return(minc.Param(0)))
        entry = next(e for e in analysis.entries if e.value == -9)
        assert ArgCondition(0, "==", 1000) in entry.conditions

    def test_inequality_guard_inferred(self):
        analysis = _analyze_with_conditions(
            minc.If(minc.Cond("<", minc.Param(0), minc.Const(0)),
                    minc.body(minc.Return(minc.Const(-22)))),
            minc.Return(minc.Const(0)))
        entry = next(e for e in analysis.entries if e.value == -22)
        assert ArgCondition(0, "<", 0) in entry.conditions

    def test_fallthrough_gets_negated_guard(self):
        analysis = _analyze_with_conditions(
            minc.If(minc.Cond("==", minc.Param(0), minc.Const(5)),
                    minc.body(minc.Return(minc.Const(-1)))),
            minc.Return(minc.Const(0)))
        zero = next(e for e in analysis.entries if e.value == 0)
        assert ArgCondition(0, "!=", 5) in zero.conditions

    def test_condition_dropped_when_paths_disagree(self):
        # -7 is returned both when p0==1 and when p0==2: neither guard
        # holds universally, so no condition may be reported
        analysis = _analyze_with_conditions(
            minc.If(minc.Cond("==", minc.Param(0), minc.Const(1)),
                    minc.body(minc.Return(minc.Const(-7)))),
            minc.If(minc.Cond("==", minc.Param(0), minc.Const(2)),
                    minc.body(minc.Return(minc.Const(-7)))),
            minc.Return(minc.Const(0)))
        entry = next(e for e in analysis.entries if e.value == -7)
        assert entry.conditions == ()

    def test_second_parameter_guard(self):
        analysis = _analyze_with_conditions(
            minc.If(minc.Cond(">", minc.Param(1), minc.Const(100)),
                    minc.body(minc.Return(minc.Const(-3)))),
            minc.Return(minc.Const(0)), nparams=2)
        entry = next(e for e in analysis.entries if e.value == -3)
        assert ArgCondition(1, ">", 100) in entry.conditions

    def test_off_by_default(self):
        image = build_one("f", 1,
                          minc.If(minc.Cond("==", minc.Param(0),
                                            minc.Const(9)),
                                  minc.body(minc.Return(minc.Const(-1)))),
                          minc.Return(minc.Param(0)))
        ctx = AnalysisContext(LINUX_X86, {image.soname: image})
        analysis = ctx.analyze_function(image.soname,
                                        image.find_export("f").offset)
        assert all(e.conditions == () for e in analysis.entries)

    def test_profile_xml_carries_conditions(self):
        image = build_one("g", 1,
                          minc.If(minc.Cond("==", minc.Param(0),
                                            minc.Const(42)),
                                  minc.body(minc.Return(minc.Const(-5)))),
                          minc.Return(minc.Param(0)))
        profiler = Profiler(LINUX_X86, {image.soname: image},
                            infer_arg_conditions=True)
        profile = profiler.profile_library(image.soname)
        xml = profile.to_xml()
        assert "<when" in xml and 'value="42"' in xml
        again = LibraryProfile.from_xml(xml)
        er = again.function("g").find(-5)
        assert ArgCondition(0, "==", 42) in er.conditions


class TestArgCondTriggers:
    def test_engine_checks_live_arguments(self):
        plan = Plan()
        plan.add(FunctionTrigger(
            function="close", mode="always",
            codes=(ErrorCode(-1, "EBADF"),),
            argconds=(ArgCondition(0, "==", 7),)))
        engine = TriggerEngine(plan)
        assert engine.needs_args
        _, hit = engine.on_call("close", (), [7])
        assert hit is not None
        _, miss = engine.on_call("close", (), [8])
        assert miss is None

    def test_xml_roundtrip(self):
        plan = Plan()
        plan.add(FunctionTrigger(
            function="read", mode="always",
            codes=(ErrorCode(-1, "EIO"),),
            argconds=(ArgCondition(2, ">=", 4096),)))
        xml = plan_to_xml(plan)
        assert "<argcond" in xml and 'argument="3"' in xml  # 1-based XML
        again = plan_from_xml(xml)
        assert again.triggers[0].argconds == \
            (ArgCondition(2, ">=", 4096),)

    def test_end_to_end_fd_targeted_injection(self, libc_linux,
                                              libc_profiles_linux):
        """Inject close() failures only for one specific descriptor."""
        plan = Plan()
        plan.add(FunctionTrigger(
            function="close", mode="always",
            codes=(ErrorCode(-1, "EIO"),),
            argconds=(ArgCondition(0, "==", 4),)))
        lfi = Controller(LINUX_X86, libc_profiles_linux, plan)
        proc = lfi.make_process(Kernel(), [libc_linux.image])
        fd_a = proc.libcall("open", proc.cstr("/a"), O_CREAT | O_RDWR,
                            0o644)                       # fd 3
        fd_b = proc.libcall("open", proc.cstr("/b"), O_CREAT | O_RDWR,
                            0o644)                       # fd 4
        assert proc.libcall("close", fd_a) == 0          # untouched
        assert proc.libcall("close", fd_b) == -1         # targeted
        assert proc.libcall("__errno") == errno_number("EIO")
        assert lfi.injections == 1


class TestEdgeConstraintAblation:
    def test_success_path_leaks_without_pruning(self, libc_linux,
                                                kernel_image_linux):
        """Without path sensitivity, kernel error constants pollute the
        wrapper's return set — the close profile would claim close() can
        return -9 directly."""
        sound = Profiler(LINUX_X86, {"libc.so.6": libc_linux.image},
                         kernel_image_linux)
        ablated = Profiler(LINUX_X86, {"libc.so.6": libc_linux.image},
                           kernel_image_linux,
                           use_edge_constraints=False)
        sound_close = sound.profile_library("libc.so.6").function("close")
        ablated_close = ablated.profile_library(
            "libc.so.6").function("close")
        assert -9 not in sound_close.retvals()
        assert -9 in ablated_close.retvals()
        assert len(ablated_close.retvals()) > len(sound_close.retvals())
