"""The parallel campaign engine and its machine-readable run summary.

§6.2 reports profiling times "on the order of minutes" and §5 campaigns
enumerate one monitored test per (function, error code) — a fault space
with no cross-case data flow.  This module fans those cases out over a
:class:`~repro.core.exec.pool.WorkerPool` while preserving the exact
result ordering of a serial run, and distills each run into a
:class:`RunSummary` (cases/sec, cache hits, worker utilization) that
downstream tooling can parse as JSON.

Counters live in a :class:`~repro.obs.metrics.MetricsRegistry` — the
summary is *derived* from the registry (``RunSummary.from_metrics``)
rather than hand-maintained, so the JSON summary, the Prometheus
exposition and ``repro stats`` all read the same numbers.

With a telemetry context attached, workers capture their controllers'
injection events and metrics in-memory and ship them back with each
:class:`CaseResult`; the engine re-emits them *in case order*, so the
JSONL event stream is deterministic whatever the backend or job count.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from ...obs.metrics import MetricsRegistry
from ...obs.telemetry import NULL_TELEMETRY, Telemetry, as_telemetry
from ...platform import Platform
from ..controller import (REPORT_SCHEMA, STATUS_CRASHED, STATUS_HUNG,
                          Controller, TestOutcome)
from ...runtime import CODE_CACHE
from ..profiles import LibraryProfile
from .pool import (PROCESS, TASK_CRASHED, TASK_HUNG, TASK_OK, TaskResult,
                   WorkerPool)


@dataclass
class RunSummary:
    """One engine run, condensed for dashboards and scripts.

    Shares the ``app`` / ``outcome`` / ``duration`` key triple with
    :class:`~repro.core.campaign.CampaignReport` and
    :class:`~repro.core.controller.TestReport` so downstream consumers
    parse a single schema.
    """

    kind: str                   # "campaign" | "profile"
    app: str
    outcome: str                # "ok" | "hung" | "crashes"
    duration: float             # wall-clock seconds
    cases: int = 0
    ok: int = 0
    errors: int = 0
    hung: int = 0
    crashed: int = 0
    jobs: int = 1
    backend: str = "serial"
    timeout: Optional[float] = None
    cases_per_second: float = 0.0
    busy_seconds: float = 0.0
    worker_utilization: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_memory_hits: int = 0

    @classmethod
    def from_metrics(cls, kind: str, app: str, outcome: str,
                     duration: float, registry: MetricsRegistry,
                     *, jobs: int = 1, backend: str = "serial",
                     timeout: Optional[float] = None,
                     cache_hits: int = 0, cache_misses: int = 0,
                     cache_memory_hits: int = 0) -> "RunSummary":
        """Derive the summary from a run's metrics registry.

        The registry (see :func:`record_tasks`) is the single source of
        truth for the per-status counts, busy time and utilization; this
        constructor only adds run identity and the wall clock.
        """
        cases = registry.counter("repro_cases_total",
                                 labelnames=("status",))
        seconds = registry.histogram("repro_case_seconds")
        utilization = registry.gauge("repro_worker_utilization")
        n = int(cases.total())
        return cls(
            kind=kind, app=app, outcome=outcome, duration=duration,
            cases=n,
            ok=int(cases.value(status=TASK_OK)),
            errors=int(cases.value(status="error")),
            hung=int(cases.value(status=TASK_HUNG)),
            crashed=int(cases.value(status=TASK_CRASHED)),
            jobs=jobs, backend=backend, timeout=timeout,
            cases_per_second=(n / duration) if duration > 0 else 0.0,
            busy_seconds=seconds.total_sum(),
            worker_utilization=utilization.value(),
            cache_hits=cache_hits, cache_misses=cache_misses,
            cache_memory_hits=cache_memory_hits)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "kind": self.kind,
            "app": self.app,
            "outcome": self.outcome,
            "duration": round(self.duration, 6),
            "cases": self.cases,
            "ok": self.ok,
            "errors": self.errors,
            "hung": self.hung,
            "crashed": self.crashed,
            "jobs": self.jobs,
            "backend": self.backend,
            "timeout": self.timeout,
            "cases_per_second": round(self.cases_per_second, 3),
            "busy_seconds": round(self.busy_seconds, 6),
            "worker_utilization": round(self.worker_utilization, 4),
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses,
                      "memory_hits": self.cache_memory_hits},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def record_tasks(registry: MetricsRegistry, tasks: List[TaskResult],
                 pool: WorkerPool, duration: float) -> None:
    """Record one pool run's task results into a metrics registry."""
    cases = registry.counter("repro_cases_total",
                             "Campaign cases by final status", ("status",))
    seconds = registry.histogram("repro_case_seconds",
                                 "Per-case wall time")
    waits = registry.histogram("repro_case_queue_wait_seconds",
                               "Per-case queue wait")
    utilization = registry.gauge("repro_worker_utilization",
                                 "busy / (duration * jobs) of this run")
    busy = 0.0
    for task in tasks:
        cases.inc(status=task.status)
        seconds.observe(task.seconds)
        waits.observe(task.waited)
        busy += task.seconds
    if duration > 0 and pool.jobs > 0:
        utilization.set(min(1.0, busy / (duration * pool.jobs)))


def summarize_tasks(kind: str, app: str, outcome: str, duration: float,
                    tasks: List[TaskResult], pool: WorkerPool,
                    *, cache_hits: int = 0, cache_misses: int = 0,
                    cache_memory_hits: int = 0,
                    registry: Optional[MetricsRegistry] = None
                    ) -> RunSummary:
    """Fold a pool run's task results into a :class:`RunSummary`.

    The tasks are recorded into ``registry`` (a fresh one when not
    given) and the summary is derived back out of it — one source of
    truth for counts, busy time and utilization.
    """
    if registry is None:
        registry = MetricsRegistry()
    record_tasks(registry, tasks, pool, duration)
    return RunSummary.from_metrics(
        kind, app, outcome, duration, registry,
        jobs=pool.jobs, backend=pool.backend, timeout=pool.timeout,
        cache_hits=cache_hits, cache_misses=cache_misses,
        cache_memory_hits=cache_memory_hits)


def _worker_label() -> str:
    """Who am I: the pool thread, a forked worker, or the main thread."""
    parent = getattr(multiprocessing, "parent_process", None)
    if parent is not None and parent() is not None:
        return f"proc-{os.getpid()}"
    name = threading.current_thread().name
    return name if name.startswith("repro-pool") else "main"


def _case_runner(factory, platform: Platform,
                 profiles: Mapping[str, LibraryProfile], case,
                 capture: bool = False, observe: bool = False):
    """Run one fault case in isolation; shared by every backend.

    With ``capture``, the controller gets a private in-memory telemetry
    context whose events and metrics travel back on the result (they
    pickle, so this works across the process backend too).

    With ``observe``, the worker additionally collects the raw
    classification signals — the guest-filesystem output digest and the
    block-coverage map — which ride back on the result for the *parent*
    to classify and journal (deterministic across backends).
    """
    from ..campaign import CaseResult

    case_telemetry = None
    case_events = None
    if capture:
        from ...obs.events import BufferedEventLog
        from ...obs.metrics import BufferedMetricsRegistry
        from ...obs.tracing import NULL_TRACER
        case_events = BufferedEventLog()
        case_telemetry = Telemetry(events=case_events,
                                   metrics=BufferedMetricsRegistry(),
                                   tracer=NULL_TRACER)
    lfi = Controller(platform, dict(profiles), case.plan(),
                     telemetry=case_telemetry, coverage=observe)
    session = factory(lfi)
    outcome = lfi.run_test(session, test_id=case.case_id())
    from ..campaign import injection_sites
    result = CaseResult(case=case, outcome=outcome,
                        fired=lfi.injections > 0,
                        instructions=lfi.instructions_executed,
                        sites=injection_sites(
                            lfi.logbook.for_test(case.case_id())))
    if capture:
        result.events = case_events.drain_dicts()
        result.metrics = case_telemetry.metrics.snapshot()
        result.worker = _worker_label()
    if observe:
        _observe_result(result, lfi)
    return result


def _observe_result(result, lfi: Controller) -> None:
    """Attach the classification signals to a worker-side result."""
    from ...runtime.blocks import export_coverage
    from ..results.matrix import output_digest

    result.output = output_digest(lfi)
    result.coverage = export_coverage(lfi.coverage_map())


def _golden_digest(factory, platform: Platform,
                   profiles: Mapping[str, LibraryProfile]) -> Optional[str]:
    """Run the workload once with no faults and digest its output.

    The digest anchors silent-corruption detection: a fired case whose
    run "succeeds" but leaves different files behind diverged silently.
    A workload that doesn't complete normally even fault-free has no
    trustworthy golden output — classification then degrades gracefully
    (no silent-corruption verdicts) rather than guessing.
    """
    from ..scenario.model import Plan
    from ..results.matrix import output_digest

    try:
        lfi = Controller(platform, dict(profiles), Plan(name="golden"))
        outcome = lfi.run_test(factory(lfi), test_id="golden")
        if outcome.status != "normal":
            return None
        return output_digest(lfi)
    except Exception:
        return None


def _golden_run(factory, platform: Platform,
                profiles: Mapping[str, LibraryProfile],
                functions: Iterable[str]):
    """Golden run plus the per-function call counts guided search needs.

    Same no-fault anchor as :func:`_golden_digest`, but the plan carries
    one sentinel trigger per campaign function at the unreachable
    ordinal: the dormant fast path proves each trigger dead on its first
    call, so the only bookkeeping the run pays for is call counting —
    and the output digest is identical to a plain golden run's.  The
    controller also arms block coverage: the golden blocks seed the
    guided frontier's seen-set, so its novelty accounting starts from
    the fault-free path instead of rediscovering it case by case.

    Returns ``(digest, call_counts, blocks)``; a workload that doesn't
    complete normally yields ``(None, counts, blocks)`` (both are still
    true of the un-injected execution, so they remain sound), and a
    workload that raises yields ``(None, {}, set())``.
    """
    from ..controller.triggers import NEVER_ORDINAL
    from ..results.matrix import output_digest
    from ..scenario.model import (INJECT_NTH, ErrorCode, FunctionTrigger,
                                  Plan)

    plan = Plan(name="golden")
    for name in functions:
        plan.add(FunctionTrigger(function=name, mode=INJECT_NTH,
                                 nth=NEVER_ORDINAL,
                                 actions=(ErrorCode(-1, "EIO"),),
                                 calloriginal=False))
    try:
        lfi = Controller(platform, dict(profiles), plan, coverage=True)
        outcome = lfi.run_test(factory(lfi), test_id="golden")
        counts = {name: int(count)
                  for name, count in lfi.engine.call_counts.items()}
        blocks = set(lfi.coverage_map())
        if outcome.status != "normal":
            return None, counts, blocks
        return output_digest(lfi), counts, blocks
    except Exception:
        return None, {}, set()


def _finish_case(case, task: TaskResult, pool: WorkerPool):
    """One drained pool task → its final :class:`CaseResult`."""
    from ..campaign import CaseResult

    if task.status == TASK_OK:
        result = task.value
        result.seconds = task.seconds
        return result
    if task.status == TASK_HUNG:
        detail = (f"worker exceeded the {pool.timeout:g}s per-case "
                  f"timeout" if pool.timeout else "worker hung")
        return CaseResult(
            case=case,
            outcome=TestOutcome(test_id=case.case_id(),
                                status=STATUS_HUNG, detail=detail),
            fired=True, seconds=task.seconds)
    # crashed worker, or the harness itself raised
    return CaseResult(
        case=case,
        outcome=TestOutcome(test_id=case.case_id(),
                            status=STATUS_CRASHED,
                            detail=str(task.error or "worker died")),
        fired=True, seconds=task.seconds)


def execute_campaign(app: str,
                     factory,
                     platform: Platform,
                     profiles: Mapping[str, LibraryProfile],
                     cases: Iterable[Any],
                     *, jobs: int = 1,
                     timeout: Optional[float] = None,
                     backend: Optional[str] = None,
                     pool: Optional[WorkerPool] = None,
                     snapshot: bool = False,
                     telemetry=None,
                     results=None,
                     results_key: Optional[Mapping[str, Any]] = None,
                     resume: bool = False,
                     guided: bool = False,
                     budget_cases: Optional[int] = None):
    """Fan the campaign's fault cases out over a worker pool.

    Results come back in case order regardless of worker count, so a
    ``jobs=4`` report is ordered identically to a serial one.  A case
    whose worker exceeds ``timeout`` becomes a ``"hung"``
    :class:`~repro.core.campaign.CaseResult`; a worker that dies (or a
    workload that raises outside the monitored guest) becomes a
    ``"crashed"`` one — neither stalls nor aborts the run.

    ``snapshot=True`` with a two-phase factory
    (:class:`~repro.core.campaign.PrefixFactory`) routes cases through
    the :class:`~repro.core.exec.snapshot.SnapshotRunner`: the workload
    prefix executes once per trigger function, and each case replays
    only the post-trigger suffix from the checkpoint — results are
    bit-identical to fresh runs.  Opaque factories silently run fresh.

    With ``telemetry`` attached, every case's injection events are
    re-emitted into the shared event log in case order (tagged with the
    case id and the worker that ran it), worker-side metrics are merged
    into the shared registry, and pool/queue statistics are recorded.

    ``results`` attaches a durable
    :class:`~repro.core.results.ResultStore`: every finished case is
    journaled **from the parent, in case order, as the pool drains** —
    under every backend — so a crashed worker, an OOM-killed run or a
    ``^C`` loses at most the in-flight cases.  ``resume=True``
    satisfies cases already journaled under the same content-addressed
    campaign key (see ``results_key``) from the store instead of
    re-running them; their stored events and metrics are re-emitted in
    case order, so the final report, event stream and metrics match an
    uninterrupted run.

    ``guided=True`` hands scheduling to the coverage-guided
    :class:`~repro.core.search.GuidedFrontier` (see
    :func:`_execute_guided`): ``cases`` becomes the search space rather
    than the execution list, and ``budget_cases`` caps how many cases
    actually run.
    """
    tele = as_telemetry(telemetry)
    original_metrics = None
    if pool is None:
        pool = WorkerPool(jobs=jobs, backend=backend, timeout=timeout,
                          metrics=tele.metrics)
    elif tele.enabled and not pool.metrics.enabled:
        # borrow the campaign's registry for queue/pool metrics, but
        # hand the pool back unchanged: a caller-supplied pool outlives
        # this run and must not keep emitting into a stale campaign's
        # registry
        original_metrics = pool.metrics
        pool.metrics = tele.metrics
    try:
        if guided:
            return _execute_guided(app, factory, platform, profiles,
                                   cases, pool=pool, snapshot=snapshot,
                                   tele=tele, results=results,
                                   results_key=results_key,
                                   resume=resume,
                                   budget_cases=budget_cases)
        return _execute_exhaustive(app, factory, platform, profiles,
                                   cases, pool=pool, snapshot=snapshot,
                                   tele=tele, results=results,
                                   results_key=results_key,
                                   resume=resume)
    finally:
        if original_metrics is not None:
            pool.metrics = original_metrics


def _execute_exhaustive(app: str,
                        factory,
                        platform: Platform,
                        profiles: Mapping[str, LibraryProfile],
                        cases: Iterable[Any],
                        *, pool: WorkerPool,
                        snapshot: bool,
                        tele: Telemetry,
                        results,
                        results_key: Optional[Mapping[str, Any]],
                        resume: bool):
    """The fixed-schedule path: run every enumerated case."""
    from ..campaign import CampaignReport, CaseResult

    case_list = list(cases)
    profiles = dict(profiles)
    capture = tele.enabled

    journal = None
    case_keys: List[str] = []
    restored: Dict[int, CaseResult] = {}
    restored_tasks: Dict[int, TaskResult] = {}
    if results is not None:
        from ..results import case_digest, restore_result
        identity = dict(results_key or {})
        identity.setdefault("app", app)
        identity.setdefault("platform", platform)
        identity.setdefault("profiles", profiles)
        journal = results.open_campaign(
            results.campaign_key(**identity), app=app)
        case_keys = [case_digest(case) for case in case_list]
        if resume:
            finished = journal.finished()
            for index, key in enumerate(case_keys):
                record = finished.get(key)
                if record is None:
                    continue
                restored[index] = restore_result(case_list[index], record)
                restored_tasks[index] = TaskResult(
                    index=index, status=record.get("task_status", TASK_OK),
                    seconds=record.get("seconds", 0.0), waited=0.0)

    pending = [(index, case) for index, case in enumerate(case_list)
               if index not in restored]
    pending_cases = [case for _, case in pending]

    # Classification runs at the parent whenever results are durable:
    # workers ship raw signals (status, output digest, coverage) and the
    # parent assigns the failure-mode class, so every backend — and the
    # snapshot path — journals identical classes.  The golden (no-fault)
    # output digest is computed once per campaign and persisted in the
    # journal's meta, so resumed runs classify against the same anchor.
    observe = journal is not None
    golden: Optional[str] = None
    if journal is not None:
        from ..results.matrix import classify_result
        meta = journal.meta()
        golden = meta.get("golden")
        if golden is None and pending_cases and "golden" not in meta:
            golden = _golden_digest(factory, platform, profiles)
        journal.set_meta(golden=golden, cases_expected=len(case_list))

    runner = None
    if snapshot:
        from .snapshot import SnapshotRunner
        runner = SnapshotRunner(app, factory, platform, profiles,
                                capture=capture, telemetry=tele,
                                observe=observe)
        if not runner.supported:
            runner = None

    def run_one(case):
        if runner is not None:
            return runner.run_case(case)
        return _case_runner(factory, platform, profiles, case, capture,
                            observe)

    if pool.backend == PROCESS and pending_cases and pool.warmup is None:
        if runner is not None:
            # build every checkpoint in the parent: forked children
            # inherit guests parked at the snapshot point (and the warm
            # code cache) with an empty dirty-page set
            def _warm_snapshots():
                runner.warm(pending_cases)
            pool.warmup = _warm_snapshots
        else:
            # prime the shared code cache in the parent: the first case
            # decodes and block-compiles every image, and each forked
            # child then inherits the warm cache instead of re-translating
            def _warm_first(case=pending_cases[0]):
                _case_runner(factory, platform, profiles, case, False)
            pool.warmup = _warm_first

    if tele.enabled:
        tele.events.emit("campaign.start", app=app, cases=len(case_list),
                         jobs=pool.jobs, backend=pool.backend,
                         timeout=pool.timeout,
                         snapshot=runner is not None)
        if journal is not None:
            tele.events.emit("campaign.resume", app=app,
                             campaign=journal.key,
                             resume=resume, skipped=len(restored),
                             replayed=len(pending))
            hits = tele.metrics.counter(
                "repro_result_store_hits_total",
                "Campaign cases satisfied from the durable result journal")
            misses = tele.metrics.counter(
                "repro_result_store_misses_total",
                "Campaign cases executed and journaled durably")
            if restored:
                hits.inc(len(restored))
            if pending:
                misses.inc(len(pending))

    def journal_progress(task: TaskResult) -> None:
        # runs in the parent as each case (in input order) drains; the
        # flush-per-record journal is what --resume picks up after a
        # crash, so this must not wait for the pool to finish.  The
        # failure-mode class is assigned here — in the parent — from
        # the worker's raw signals, so it is backend-independent.
        index, case = pending[task.index]
        result = _finish_case(case, task, pool)
        result.outcome_class = classify_result(result, golden)
        journal.record(case_keys[index], case, result, task.status)

    cache_before = CODE_CACHE.stats()
    started = time.perf_counter()
    try:
        tasks = pool.map(run_one, pending_cases,
                         progress=journal_progress
                         if journal is not None else None)
    finally:
        if journal is not None:
            journal.close()
    duration = time.perf_counter() - started

    task_by_index = {index: task
                     for (index, _), task in zip(pending, tasks)}
    all_tasks = [restored_tasks.get(i, task_by_index.get(i))
                 for i in range(len(case_list))]

    results_list: List[CaseResult] = []
    for index, case in enumerate(case_list):
        if index in restored:
            result = restored[index]
        else:
            result = _finish_case(case, task_by_index[index], pool)
        if journal is not None and result.outcome_class is None:
            # legacy restored records and per-loop synthesized hung/
            # crashed results; same inputs, same deterministic class
            result.outcome_class = classify_result(result, golden)
        if tele.enabled:
            _replay_case_telemetry(tele, case, result)
        results_list.append(result)

    report = CampaignReport(app=app, results=results_list,
                            duration=duration)
    if journal is not None:
        report.resumed = {"skipped": len(restored),
                          "replayed": len(pending)}
    run_registry = MetricsRegistry()
    report.summary = summarize_tasks("campaign", app, report.outcome(),
                                     duration, all_tasks, pool,
                                     registry=run_registry)
    if tele.enabled:
        _record_execution_metrics(tele, results_list, cache_before)
        tele.metrics.merge(run_registry.snapshot())
        end_fields = dict(app=app, outcome=report.outcome(),
                          duration=round(duration, 6),
                          cases=len(results_list))
        if runner is not None:
            stats = runner.cache.stats()
            end_fields.update(
                snapshots_built=stats["built"],
                snapshot_replays=sum(1 for r in results_list
                                     if getattr(r, "snapshot", None)),
                snapshot_fallbacks=runner.fallbacks)
        tele.events.emit("campaign.end", **end_fields)
    return report


def _execute_guided(app: str,
                    factory,
                    platform: Platform,
                    profiles: Mapping[str, LibraryProfile],
                    cases: Iterable[Any],
                    *, pool: WorkerPool,
                    snapshot: bool,
                    tele: Telemetry,
                    results,
                    results_key: Optional[Mapping[str, Any]],
                    resume: bool,
                    budget_cases: Optional[int]):
    """The coverage-guided path: the frontier decides what runs.

    ``cases`` seeds a :class:`~repro.core.search.GuidedFrontier`; the
    engine then alternates frontier batches with pool runs, feeding
    every finished case's coverage back between batches.  Because batch
    width is fixed and observations apply in batch input order, the
    schedule is a pure function of the case list and the per-case
    coverage — identical across the serial, thread and process backends.

    Resume replays the *scheduler*, not the journal: each scheduled
    batch is checked against the journal and already-finished cases are
    restored (and observed) instead of re-run, so an interrupted guided
    campaign resumes into exactly the schedule the uninterrupted run
    would have produced, converging on the same final matrix.
    Classification signals (coverage, output digest) are always
    collected — the frontier runs on them — so guided mode classifies
    outcomes even without a result store attached.
    """
    from ..campaign import CampaignReport
    from ..results.matrix import classify_result
    from ..search import GuidedFrontier

    case_list = list(cases)
    profiles = dict(profiles)
    capture = tele.enabled

    journal = None
    finished: Dict[str, Mapping[str, Any]] = {}
    if results is not None:
        from ..results import case_digest, restore_result
        identity = dict(results_key or {})
        identity.setdefault("app", app)
        identity.setdefault("platform", platform)
        identity.setdefault("profiles", profiles)
        journal = results.open_campaign(
            results.campaign_key(**identity), app=app)
        if resume:
            finished = journal.finished()

    # One golden run serves triple duty: the no-fault output digest
    # anchors silent-corruption classification, the per-function call
    # counts bound the frontier's ordinal axis, and the golden coverage
    # seeds its seen-block set.  The guest is deterministic, so running
    # it afresh on resume reproduces the identical search space; the
    # digest honors a previously journaled anchor for classification
    # continuity.
    meta = journal.meta() if journal is not None else {}
    golden, call_counts, golden_blocks = _golden_run(
        factory, platform, profiles,
        sorted({case.function for case in case_list}))
    if "golden" in meta:
        golden = meta.get("golden")
    if journal is not None:
        journal.set_meta(golden=golden, call_counts=call_counts,
                         guided=True,
                         cases_expected=(min(budget_cases, len(case_list))
                                         if budget_cases is not None
                                         else len(case_list)))

    frontier = GuidedFrontier(case_list, budget_cases=budget_cases,
                              call_counts=call_counts,
                              baseline_blocks=golden_blocks,
                              telemetry=tele)

    runner = None
    if snapshot:
        from .snapshot import SnapshotRunner
        runner = SnapshotRunner(app, factory, platform, profiles,
                                capture=capture, telemetry=tele,
                                observe=True)
        if not runner.supported:
            runner = None

    def run_one(case):
        if runner is not None:
            return runner.run_case(case)
        return _case_runner(factory, platform, profiles, case, capture,
                            True)

    if pool.backend == PROCESS and case_list and pool.warmup is None:
        # the pool re-runs its warmup hook on every map() call, and
        # guided mode maps once per batch — make warming idempotent
        warmed: List[bool] = []

        def _warm_once():
            if warmed:
                return
            warmed.append(True)
            if runner is not None:
                # expansion only deepens ordinals of already-enumerated
                # (function, action) pairs, so checkpoints built for
                # the seed list cover every case the frontier can emit
                runner.warm(case_list)
            else:
                _case_runner(factory, platform, profiles, case_list[0],
                             False)
        pool.warmup = _warm_once

    if tele.enabled:
        tele.events.emit("campaign.start", app=app, cases=len(case_list),
                         jobs=pool.jobs, backend=pool.backend,
                         timeout=pool.timeout,
                         snapshot=runner is not None, guided=True)

    results_list: List[Any] = []
    all_tasks: List[TaskResult] = []
    restored_n = 0
    cache_before = CODE_CACHE.stats()
    started = time.perf_counter()
    try:
        while True:
            batch = frontier.next_batch()
            if not batch:
                break
            entries = []        # (case, case_key, journaled record)
            for case in batch:
                key = case_digest(case) if journal is not None else ""
                entries.append((case, key, finished.get(key)))
            to_run = [(pos, case)
                      for pos, (case, _key, record) in enumerate(entries)
                      if record is None]

            def journal_progress(task: TaskResult, entries=entries,
                                 to_run=to_run) -> None:
                # parent-side, in batch input order, flushed per record
                # — what --resume picks up after a crash (see the
                # exhaustive path's journal_progress)
                pos, case = to_run[task.index]
                result = _finish_case(case, task, pool)
                result.outcome_class = classify_result(result, golden)
                journal.record(entries[pos][1], case, result, task.status)

            tasks = pool.map(run_one, [case for _, case in to_run],
                             progress=journal_progress
                             if journal is not None else None)
            task_at = {to_run[j][0]: tasks[j] for j in range(len(tasks))}

            for pos, (case, _key, record) in enumerate(entries):
                if record is not None:
                    result = restore_result(case, record)
                    task = TaskResult(
                        index=len(all_tasks),
                        status=record.get("task_status", TASK_OK),
                        seconds=record.get("seconds", 0.0), waited=0.0)
                    restored_n += 1
                else:
                    task = task_at[pos]
                    result = _finish_case(case, task, pool)
                if result.outcome_class is None:
                    result.outcome_class = classify_result(result, golden)
                # feed back in batch input order — scheduling, events
                # and the journal all share this one deterministic order
                frontier.observe(case, result,
                                 restored=record is not None)
                if tele.enabled:
                    _replay_case_telemetry(tele, case, result)
                results_list.append(result)
                all_tasks.append(task)
    finally:
        if journal is not None:
            journal.close()
    duration = time.perf_counter() - started

    report = CampaignReport(app=app, results=results_list,
                            duration=duration)
    if journal is not None:
        report.resumed = {"skipped": restored_n,
                          "replayed": len(results_list) - restored_n}
    run_registry = MetricsRegistry()
    report.summary = summarize_tasks("campaign", app, report.outcome(),
                                     duration, all_tasks, pool,
                                     registry=run_registry)
    if tele.enabled:
        _record_execution_metrics(tele, results_list, cache_before)
        tele.metrics.merge(run_registry.snapshot())
        if journal is not None:
            tele.events.emit("campaign.resume", app=app,
                             campaign=journal.key, resume=resume,
                             skipped=restored_n,
                             replayed=len(results_list) - restored_n)
            if restored_n:
                tele.metrics.counter(
                    "repro_result_store_hits_total",
                    "Campaign cases satisfied from the durable result "
                    "journal").inc(restored_n)
            if len(results_list) - restored_n:
                tele.metrics.counter(
                    "repro_result_store_misses_total",
                    "Campaign cases executed and journaled durably"
                ).inc(len(results_list) - restored_n)
        tele.events.emit("campaign.guided", app=app,
                         enumerated=len(case_list), **frontier.summary())
        end_fields = dict(app=app, outcome=report.outcome(),
                          duration=round(duration, 6),
                          cases=len(results_list))
        if runner is not None:
            stats = runner.cache.stats()
            end_fields.update(
                snapshots_built=stats["built"],
                snapshot_replays=sum(1 for r in results_list
                                     if getattr(r, "snapshot", None)),
                snapshot_fallbacks=runner.fallbacks)
        tele.events.emit("campaign.end", **end_fields)
    return report


def _record_execution_metrics(tele: Telemetry, results,
                              cache_before: Mapping[str, int]) -> None:
    """Guest-execution counters for the run: instruction totals, a
    per-case MIPS gauge, and this process's shared-code-cache activity.

    The cache deltas cover the parent process only — under the process
    backend the forked children's compilations die with them (which is
    exactly what the pre-fork warmup minimizes).
    """
    instructions = tele.metrics.counter(
        "repro_instructions_total",
        "Guest instructions executed by campaign cases")
    mips = tele.metrics.gauge(
        "repro_case_mips",
        "Guest MIPS (instructions / wall second / 1e6) per case",
        ("case",))
    for result in results:
        if result.instructions:
            instructions.inc(result.instructions)
            if result.seconds > 0:
                mips.set(result.instructions / result.seconds / 1e6,
                         case=result.case.case_id())
    cache_now = CODE_CACHE.stats()

    def delta(*names: str) -> int:
        return sum(cache_now[n] - cache_before.get(n, 0) for n in names)

    compiled = delta("blocks_compiled")
    hits = delta("template_hits", "module_hits")
    if compiled:
        tele.metrics.counter(
            "repro_blocks_compiled_total",
            "Basic blocks translated to closures").inc(compiled)
    if hits:
        tele.metrics.counter(
            "repro_block_cache_hits_total",
            "Shared code cache hits (templates bound + modules reused)"
        ).inc(hits)
    linked = delta("traces_linked")
    if linked:
        tele.metrics.counter(
            "repro_traces_linked_total",
            "Hot blocks linked into superblock traces").inc(linked)
    trace_hits = delta("trace_hits")
    if trace_hits:
        tele.metrics.counter(
            "repro_trace_cache_hits_total",
            "Shared trace templates re-bound by another CPU"
        ).inc(trace_hits)
    invalidated = delta("trace_invalidations")
    if invalidated:
        tele.metrics.counter(
            "repro_trace_invalidations_total",
            "Traces dropped because a constituent block was invalidated"
        ).inc(invalidated)
    evicted = delta("evictions")
    if evicted:
        tele.metrics.counter(
            "repro_code_cache_evictions_total",
            "Decoded streams / module code LRU-evicted").inc(evicted)


def _replay_case_telemetry(tele: Telemetry, case, result) -> None:
    """Re-emit one case's captured worker-side telemetry, in order.

    Each captured event is re-sequenced into the parent log (tagged
    with the case id and worker); worker-side counters — per-function
    injections, trigger evaluations — merge into the parent registry.
    """
    worker = getattr(result, "worker", "") or "lost"
    for event in getattr(result, "events", ()):
        fields = dict(event.get("fields", {}),
                      case=case.case_id(), worker=worker)
        tele.events.emit(event.get("kind", "event"),
                         severity=event.get("severity", "info"), **fields)
    metrics = getattr(result, "metrics", None)
    if metrics:
        tele.metrics.merge(metrics)
    info = getattr(result, "snapshot", None)
    if info:
        # restore bookkeeping travels on the result (it crosses the
        # process-backend pickle boundary) and is recorded parent-side,
        # so the worker-captured stream stays bit-identical to a fresh
        # run's while the JSONL still carries snapshot efficiency
        tele.metrics.counter(
            "repro_snapshot_restores_total",
            "Checkpoint restores performed for campaign replay",
            ("workload",)).inc(workload=info.get("workload", ""))
        tele.metrics.histogram(
            "repro_snapshot_restore_seconds",
            "Wall time of one checkpoint restore").observe(
                info.get("seconds", 0.0))
        tele.metrics.histogram(
            "repro_snapshot_dirty_pages",
            "Pages rewritten by one checkpoint restore").observe(
                info.get("dirty_pages", 0))
        tele.events.emit(
            "snapshot", action="restored", case=case.case_id(),
            group=info.get("group"), dirty_pages=info.get("dirty_pages"),
            bytes=info.get("bytes"),
            seconds=round(info.get("seconds", 0.0), 6), worker=worker)
    action_fields = ({}
                     if hasattr(case.code, "retval")
                     else {"action": case.code.token()})
    tele.events.emit(
        "case", case=case.case_id(), function=case.function,
        errno=getattr(case.code, "errno", None),
        retval=getattr(case.code, "retval", None),
        ordinal=case.call_ordinal, status=result.outcome.status,
        fired=result.fired, seconds=round(result.seconds, 6),
        worker=worker,
        instructions=getattr(result, "instructions", 0),
        **action_fields)
