"""miniweb, the APR libraries and the workload drivers."""

import pytest

from repro.apps import (ApacheBenchDriver, MiniWeb, SysbenchOltpDriver,
                        top_called_functions)
from repro.apps.minidb import MiniDB
from repro.core.controller import Controller
from repro.core.scenario import (ErrorCode, FunctionTrigger, Plan,
                                 passthrough_plan, random_plan)
from repro.kernel import Kernel
from repro.platform import LINUX_X86


class TestMiniWeb:
    def test_serves_static_page(self):
        server = MiniWeb(Kernel(), LINUX_X86)
        ab = ApacheBenchDriver(server)
        result = ab.run_static(5)
        assert result.failures == 0
        assert server.requests_served == 5

    def test_serves_php_page(self):
        server = MiniWeb(Kernel(), LINUX_X86)
        ab = ApacheBenchDriver(server)
        result = ab.run_php(5)
        assert result.failures == 0

    def test_php_issues_more_library_calls(self, web_stack_linux):
        """§6.4: the PHP workload evaluates triggers far more often."""
        images, profiles = web_stack_linux

        def calls_for(page_method):
            plan = passthrough_plan({"read": [], "write": [],
                                     "send": [], "recv": [],
                                     "malloc": [], "open": [],
                                     "close": []})
            lfi = Controller(LINUX_X86, profiles, plan)
            server = MiniWeb(Kernel(), LINUX_X86, controller=lfi)
            getattr(ApacheBenchDriver(server), page_method)(3)
            return lfi.evaluations

        assert calls_for("run_php") > 2 * calls_for("run_static")

    def test_missing_page_is_404(self):
        server = MiniWeb(Kernel(), LINUX_X86)
        ab = ApacheBenchDriver(server)
        result = ab.run(3, page="/www/ghost.html")
        assert result.failures == 3     # 404s are not 200 OK

    def test_injection_can_fail_requests(self, web_stack_linux):
        images, profiles = web_stack_linux
        plan = Plan()
        plan.add(FunctionTrigger(function="open", mode="always",
                                 codes=(ErrorCode(-1, "EMFILE"),)))
        lfi = Controller(LINUX_X86, profiles, plan)
        server = MiniWeb(Kernel(), LINUX_X86, controller=lfi)
        result = ApacheBenchDriver(server).run_static(3)
        assert result.failures == 3     # every open fails -> 404


class TestOltp:
    def test_read_only_transactions(self):
        db = MiniDB(Kernel(), LINUX_X86)
        driver = SysbenchOltpDriver(db)
        result = driver.run(10, read_only=True)
        assert result.errors == 0
        assert result.txns_per_second > 0

    def test_read_write_transactions(self):
        db = MiniDB(Kernel(), LINUX_X86)
        driver = SysbenchOltpDriver(db)
        result = driver.run(10, read_only=False)
        assert result.errors == 0

    def test_read_only_faster_than_read_write(self):
        db = MiniDB(Kernel(), LINUX_X86)
        driver = SysbenchOltpDriver(db)
        ro = driver.run(15, read_only=True)
        rw = driver.run(15, read_only=False)
        assert ro.txns_per_second > rw.txns_per_second

    def test_injection_surfaces_as_txn_errors(self, libc_profiles_linux):
        plan = random_plan(libc_profiles_linux, probability=0.08, seed=4,
                           functions=["read"])
        lfi = Controller(LINUX_X86, libc_profiles_linux, plan)
        db = MiniDB(Kernel(), LINUX_X86, controller=lfi)
        driver = SysbenchOltpDriver(db)
        result = driver.run(25, read_only=True)
        assert result.errors > 0


class TestTopCalled:
    def test_ranking(self):
        counts = {"read": 100, "close": 5, "write": 50}
        assert top_called_functions(counts, 2) == ["read", "write"]

    def test_deterministic_tie_break(self):
        counts = {"b": 10, "a": 10}
        assert top_called_functions(counts, 2) == ["a", "b"]
