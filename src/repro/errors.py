"""Exception hierarchy for the LFI reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class IsaError(ReproError):
    """Base class for ISA-level problems (encoding, decoding, assembly)."""


class EncodingError(IsaError):
    """An instruction could not be encoded to bytes."""


class DecodingError(IsaError):
    """A byte sequence could not be decoded into an instruction."""


class AssemblyError(IsaError):
    """Assembly-source or IR-level error (unknown label, bad operand)."""


class ImageError(ReproError):
    """A SELF image is malformed or cannot be (de)serialized."""


class SymbolError(ImageError):
    """A required symbol is missing or duplicated in an image."""


class ToolchainError(ReproError):
    """MinC compilation or linking failed."""


class CodegenError(ToolchainError):
    """The code generator met an AST construct it cannot lower."""


class LinkError(ToolchainError):
    """Static linking failed (undefined symbol, duplicate export)."""


class KernelError(ReproError):
    """The simulated kernel rejected an operation at the host level.

    Note: *guest-visible* errors are returned as negative errno values,
    never raised; this exception marks bugs or host-level misuse.
    """


class RuntimeFault(ReproError):
    """Base class for faults raised while executing guest code."""

    def __init__(self, message: str, *, eip: int = 0) -> None:
        super().__init__(message)
        self.eip = eip


class MemoryFault(RuntimeFault):
    """Guest access to an unmapped or protected address (SIGSEGV)."""


class IllegalInstruction(RuntimeFault):
    """The CPU fetched an undecodable or unsupported instruction."""


class GuestAbort(RuntimeFault):
    """The guest process aborted (SIGABRT), e.g. allocation failure."""

    def __init__(self, message: str, *, signal: int = 6, eip: int = 0) -> None:
        super().__init__(message, eip=eip)
        self.signal = signal


class LoaderError(ReproError):
    """The dynamic linker could not load or resolve something."""


class ProfilerError(ReproError):
    """Static analysis failed in an unrecoverable way."""


class ScenarioError(ReproError):
    """A fault scenario is syntactically or semantically invalid."""


class ControllerError(ReproError):
    """The LFI controller could not synthesize or drive an experiment."""


class ResultsError(ReproError):
    """The campaign result store is missing, ambiguous, or corrupt."""


class DocParseError(ReproError):
    """Library documentation could not be parsed."""
