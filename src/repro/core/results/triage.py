"""Failure triage over a durable campaign: bucket, rank, replay.

A big systematic campaign fails the same way many times — fifty cases
that all die in the same ``malloc`` error path are one bug, not fifty.
Triage deduplicates the journal's failing cases into buckets keyed by a
**stable** signature:

    outcome class  ·  faulted function / errno  ·  injection-site stack

The stack component hashes the logbook stack frames of the first real
injection (the frames the paper's §5.2 log records per injection), so
two cases that crash from the same call site share a bucket even when
their case ids differ, while the same errno injected from two distinct
call paths stays separate.  Buckets rank by population, and each emits
a replay plan (via :mod:`repro.core.controller.replay`) that reproduces
one exemplar failure — the §6.1 regression-suite artifact, but one per
*distinct* failure instead of one per case.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..controller import (STATUS_CRASHED, STATUS_ERROR_EXIT, STATUS_HUNG,
                          STATUS_SIGABRT, STATUS_SIGSEGV)
from ..controller.logbook import InjectionRecord
from ..controller.replay import build_replay_plan
from ..scenario.xml_io import plan_to_xml
from .matrix import (CLASS_CRASH, CLASS_DETECTED, CLASS_HANG,
                     FAILURE_CLASSES, classify_record)

#: Failing outcome statuses → the coarse triage class.  One vocabulary
#: with the failure-mode matrix (``core.results.matrix``): triage
#: buckets and matrix cells use the same labels.
_CLASSES = {
    STATUS_SIGSEGV: CLASS_CRASH,
    STATUS_SIGABRT: CLASS_CRASH,
    STATUS_CRASHED: CLASS_CRASH,
    STATUS_HUNG: CLASS_HANG,
    STATUS_ERROR_EXIT: CLASS_DETECTED,
}


def outcome_class(status: str) -> Optional[str]:
    """The coarse failure class of an outcome status (None = not a
    failure).  Status alone can never yield ``silent-corruption`` —
    that verdict needs the output digest, so record-level callers use
    :func:`record_class` instead."""
    return _CLASSES.get(status)


def record_class(record: Mapping[str, Any]) -> Optional[str]:
    """The failure class of one journal record (None = not a failure).

    Prefers the record's journaled ``outcome_class`` (assigned by the
    campaign parent, including ``silent-corruption``), falling back to
    the status mapping for pre-classification journals.
    """
    cls = classify_record(record)
    return cls if cls in FAILURE_CLASSES else None


def _stack_hash(sites: Iterable[Mapping[str, Any]]) -> str:
    """Hash of the first *injecting* site's stack frames.

    Frame addresses vary with layout; symbol names don't, so hex frames
    (unresolved symbols) are kept verbatim while named frames dominate.
    An empty hash (no sites journaled — e.g. a worker that died before
    logging) still buckets by class/function/errno.
    """
    for site in sites:
        if site.get("calloriginal"):
            continue
        stack = site.get("stack") or ()
        return hashlib.sha256(
            "<-".join(stack).encode("utf-8")).hexdigest()[:16]
    return ""


def bucket_key(record: Mapping[str, Any]) -> Optional[str]:
    """The stable dedup key of one failing journal record (None when
    the record is not a failure)."""
    cls = record_class(record)
    if cls is None:
        return None
    parts = (cls, record.get("function", ""),
             str(record.get("errno") or record.get("retval") or ""),
             _stack_hash(record.get("sites") or ()))
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:16]


def _sites_to_records(sites: Iterable[Mapping[str, Any]]
                      ) -> List[InjectionRecord]:
    return [InjectionRecord(
        sequence=site.get("sequence", i + 1),
        test_id=site.get("test", ""),
        function=site.get("function", ""),
        call_number=site.get("call", 1),
        retval=site.get("retval"),
        errno=site.get("errno"),
        calloriginal=bool(site.get("calloriginal")),
        modifications=tuple(site.get("modifications") or ()),
        stacktrace=tuple(site.get("stack") or ()),
    ) for i, site in enumerate(sites)]


@dataclass
class FailureBucket:
    """One distinct failure: its signature, population, and a replay."""

    key: str
    outcome_class: str          # a FAILURE_CLASSES label
    status: str                 # exemplar's precise status
    function: str
    errno: Optional[str]
    stack: List[str] = field(default_factory=list)
    cases: List[str] = field(default_factory=list)
    exemplar: str = ""          # case id whose replay is emitted
    replay_xml: str = ""
    detail: str = ""

    @property
    def count(self) -> int:
        return len(self.cases)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bucket": self.key,
            "class": self.outcome_class,
            "status": self.status,
            "function": self.function,
            "errno": self.errno,
            "stack": list(self.stack),
            "count": self.count,
            "cases": list(self.cases),
            "exemplar": self.exemplar,
            "replay": self.replay_xml,
            "detail": self.detail,
        }


@dataclass
class TriageReport:
    """Ranked failure buckets for one journaled campaign."""

    campaign: str
    app: str = ""
    cases: int = 0              # failing cases triaged
    buckets: List[FailureBucket] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"triage of campaign {self.campaign[:12]}"
                 + (f" ({self.app})" if self.app else "")
                 + f": {self.cases} failing cases in "
                 f"{len(self.buckets)} buckets"]
        for i, bucket in enumerate(self.buckets, 1):
            errno = bucket.errno or "none"
            where = ("<-".join(bucket.stack[:3])
                     if bucket.stack else "(no stack)")
            lines.append(
                f"  #{i} [{bucket.outcome_class}] {bucket.function}"
                f"/{errno} ×{bucket.count}  at {where}")
            lines.append(f"      exemplar {bucket.exemplar}"
                         + (f" — {bucket.detail}" if bucket.detail else ""))
        if not self.buckets:
            lines.append("  no failures to triage")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.triage/1",
            "campaign": self.campaign,
            "app": self.app,
            "cases": self.cases,
            "buckets": [b.to_dict() for b in self.buckets],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def triage_records(campaign: str, records: Iterable[Mapping[str, Any]],
                   *, app: str = "",
                   include_errors: bool = False) -> TriageReport:
    """Bucket a campaign's failing journal records and rank by count.

    Crashes, hangs and silent corruption always triage; graceful
    ``detected-error`` outcomes — usually the *tolerated* behaviour a
    campaign hopes for — join only with ``include_errors``.  Each
    bucket's replay plan comes from its exemplar's journaled injection
    sites (the first case seen, so the choice is deterministic),
    falling back to the stored §5.2 replay script when the sites were
    lost with a crashed worker.
    """
    buckets: Dict[str, FailureBucket] = {}
    failing = 0
    for record in records:
        cls = record_class(record)
        if cls is None or (cls == CLASS_DETECTED and not include_errors):
            continue
        failing += 1
        key = bucket_key(record)
        bucket = buckets.get(key)
        if bucket is None:
            sites = list(record.get("sites") or ())
            injecting = [s for s in sites if not s.get("calloriginal")]
            stack = list((injecting[0].get("stack") if injecting else None)
                         or ())
            replay = ""
            if sites:
                replay = plan_to_xml(build_replay_plan(
                    _sites_to_records(sites),
                    name=f"triage-{record.get('case', key)}"))
            if not replay:
                replay = record.get("replay", "")
            bucket = FailureBucket(
                key=key, outcome_class=cls,
                status=record.get("status", ""),
                function=record.get("function", ""),
                errno=record.get("errno"), stack=stack,
                exemplar=record.get("case", ""), replay_xml=replay,
                detail=(record.get("detail") or "").splitlines()[-1]
                if record.get("detail") else "")
            buckets[key] = bucket
        bucket.cases.append(record.get("case", ""))
    ranked = sorted(buckets.values(),
                    key=lambda b: (-b.count, b.key))
    return TriageReport(campaign=campaign, app=app, cases=failing,
                        buckets=ranked)
