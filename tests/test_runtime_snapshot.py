"""Unit tests for the checkpoint/restore engine.

Covers the layers the campaign fork-server builds on:

* ``Memory`` copy-on-write page journaling (snapshot_begin / restore /
  end) and ``unmap_region``'s interaction with the aligned-u32
  fast path and an active journal;
* ``Vfs.clone``/``restore`` (hard links stay shared) and
  ``Kernel.clone``/``restore`` (fd-table aliasing via the shared memo);
* ``MachineSnapshot`` over a real guest (minidb) — restore rolls the
  whole machine back bit-for-bit and replays deterministically;
* ``SnapshotCache`` checkout/checkin accounting.
"""

from __future__ import annotations

import copy

import pytest

from repro.apps.minidb import MiniDB
from repro.errors import MemoryFault
from repro.kernel import Kernel
from repro.kernel.vfs import Vfs
from repro.platform import LINUX_X86
from repro.runtime import MachineSnapshot, SnapshotCache
from repro.runtime.memory import PAGE_SIZE, Memory


class TestMemorySnapshot:
    def test_restore_rewinds_dirty_pages_only(self):
        mem = Memory()
        mem.map_region(0x1000, 4 * PAGE_SIZE)
        mem.write(0x1000, b"prefix")
        mem.write(0x3000, b"stable")
        mem.snapshot_begin()
        assert mem.snapshot_active
        assert mem.snapshot_dirty_pages() == 0

        mem.write(0x1000, b"DIRTY!")
        mem.write_u32(0x2000, 0xDEADBEEF)    # page born after checkpoint
        assert mem.snapshot_dirty_pages() == 2

        restored = mem.snapshot_restore()
        assert restored == 2
        assert mem.read(0x1000, 6) == b"prefix"
        assert mem.read(0x3000, 6) == b"stable"
        # the post-checkpoint page dropped its backing entirely
        assert mem.read(0x2000, 4) == b"\x00\x00\x00\x00"

    def test_journal_rearms_after_restore(self):
        mem = Memory()
        mem.map_region(0, PAGE_SIZE)
        mem.write(0, b"base")
        mem.snapshot_begin()
        for round_no in range(3):
            mem.write(0, b"gen%d" % round_no)
            assert mem.snapshot_restore() == 1
            assert mem.read(0, 4) == b"base"
        assert mem.snapshot_dirty_pages() == 0

    def test_restore_rolls_back_regions_mapped_after_checkpoint(self):
        mem = Memory()
        mem.map_region(0, PAGE_SIZE)
        mem.snapshot_begin()
        mem.map_region(0x10000, PAGE_SIZE)   # guest mmap in the suffix
        mem.write(0x10000, b"late")
        mem.snapshot_restore()
        assert not mem.is_mapped(0x10000, 1)
        with pytest.raises(MemoryFault):
            mem.read(0x10000, 4)

    def test_snapshot_end_drops_checkpoint(self):
        mem = Memory()
        mem.map_region(0, PAGE_SIZE)
        mem.snapshot_begin()
        mem.snapshot_end()
        assert not mem.snapshot_active
        with pytest.raises(ValueError):
            mem.snapshot_restore()

    def test_unmap_during_snapshot_restores_mapping_and_bytes(self):
        mem = Memory()
        mem.map_region(0, 2 * PAGE_SIZE)
        mem.write(PAGE_SIZE, b"keepme")
        mem.snapshot_begin()
        mem.unmap_region(PAGE_SIZE, PAGE_SIZE)
        assert not mem.is_mapped(PAGE_SIZE, 1)
        mem.snapshot_restore()
        assert mem.is_mapped(PAGE_SIZE, PAGE_SIZE)
        assert mem.read(PAGE_SIZE, 6) == b"keepme"


class TestMemoryUnmap:
    def test_unmap_invalidates_u32_fast_path(self):
        mem = Memory()
        mem.map_region(0x4000, PAGE_SIZE)
        mem.write_u32(0x4000, 42)
        # the aligned access above proved the page for the fast path
        assert mem.read_u32(0x4000) == 42
        mem.unmap_region(0x4000, PAGE_SIZE)
        with pytest.raises(MemoryFault):
            mem.read_u32(0x4000)
        with pytest.raises(MemoryFault):
            mem.write_u32(0x4000, 7)

    def test_unmap_middle_splits_region(self):
        mem = Memory()
        mem.map_region(0, 3 * PAGE_SIZE)
        for page in range(3):
            mem.write_u32(page * PAGE_SIZE, page + 1)
        mem.unmap_region(PAGE_SIZE, PAGE_SIZE)
        assert mem.read_u32(0) == 1
        assert mem.read_u32(2 * PAGE_SIZE) == 3
        with pytest.raises(MemoryFault):
            mem.read_u32(PAGE_SIZE)

    def test_partial_page_unmap_zeroes_bytes_keeps_rest(self):
        mem = Memory()
        mem.map_region(0, PAGE_SIZE)
        mem.write(0, b"A" * 64)
        mem.unmap_region(16, 16)
        assert mem.read(0, 16) == b"A" * 16
        assert mem.read(32, 16) == b"A" * 16
        with pytest.raises(MemoryFault):
            mem.read(16, 16)
        # whole-page aligned access must now take the slow path and fault
        with pytest.raises(MemoryFault):
            mem.read_u32(16)

    def test_unmap_rejects_bad_size(self):
        mem = Memory()
        with pytest.raises(ValueError):
            mem.unmap_region(0, 0)


class TestVfsCloneRestore:
    def test_clone_is_independent(self):
        vfs = Vfs()
        vfs.mkdir("/tmp")
        vfs.write_file("/tmp/a", b"one")
        frozen = vfs.clone()
        vfs.write_file("/tmp/a", b"two")
        vfs.write_file("/tmp/b", b"new")
        assert frozen.read_file("/tmp/a") == b"one"
        assert not frozen.exists("/tmp/b")

    def test_restore_keeps_vfs_identity_and_contents(self):
        vfs = Vfs()
        vfs.mkdir("/tmp")
        vfs.write_file("/tmp/a", b"one")
        frozen = vfs.clone()
        vfs.write_file("/tmp/a", b"dirty")
        vfs.unlink("/tmp/a")
        before = id(vfs)
        vfs.restore(frozen)
        assert id(vfs) == before
        assert vfs.read_file("/tmp/a") == b"one"
        # the frozen copy survives for the next restore
        vfs.write_file("/tmp/a", b"dirty-again")
        vfs.restore(frozen)
        assert vfs.read_file("/tmp/a") == b"one"

    def test_hard_links_stay_shared_across_clone(self):
        vfs = Vfs()
        vfs.mkdir("/tmp")
        vfs.write_file("/tmp/orig", b"payload")
        vfs.link("/tmp/orig", "/tmp/alias")
        clone = vfs.clone()
        node = clone.lookup("/tmp/orig")
        node.data.extend(b"-more")
        assert clone.read_file("/tmp/alias") == b"payload-more"
        # and the original tree was not touched
        assert vfs.read_file("/tmp/alias") == b"payload"


class TestKernelCloneRestore:
    def test_restore_rolls_back_kernel_state(self):
        kernel = Kernel()
        kernel.vfs.mkdir("/tmp")
        kernel.vfs.write_file("/tmp/log", b"pre")
        frozen = kernel.clone()
        clock0, syscalls0 = kernel.clock_ns, kernel.syscall_count
        kernel.vfs.write_file("/tmp/log", b"post")
        kernel.vfs.write_file("/tmp/extra", b"x")
        kernel.clock_ns += 1_000_000
        kernel.syscall_count += 99
        kernel.restore(frozen)
        assert kernel.vfs.read_file("/tmp/log") == b"pre"
        assert not kernel.vfs.exists("/tmp/extra")
        assert kernel.clock_ns == clock0
        assert kernel.syscall_count == syscalls0

    def test_fd_table_aliases_cloned_vnodes(self):
        """A deepcopy of KProcState with the kernel-clone memo must
        point at the *cloned* VFS tree, not the live one — that's what
        keeps restored fds coherent with the restored filesystem."""
        from repro.apps.minidb import MiniDB

        db = MiniDB(Kernel(os_name=LINUX_X86.os), LINUX_X86)
        db.execute("create table t k v")
        db.execute("insert into t 1 a")
        kernel, proc = db.kernel, db.proc
        memo: dict = {}
        frozen = kernel.clone(memo)
        kstate = copy.deepcopy(proc.kstate, memo)
        live_nodes = {id(fd.node) for fd in proc.kstate.fds.values()
                      if getattr(fd, "node", None) is not None}
        for fd in kstate.fds.values():
            node = getattr(fd, "node", None)
            if node is not None:
                assert id(node) not in live_nodes


class TestMachineSnapshot:
    def _workload(self):
        kernel = Kernel(os_name=LINUX_X86.os)
        db = MiniDB(kernel, LINUX_X86)
        db.execute("create table t k v")
        for i in range(4):
            db.execute(f"insert into t {i} v{i}")
        return kernel, db

    def test_restore_is_bit_identical(self):
        kernel, db = self._workload()
        snap = MachineSnapshot.capture(kernel.processes)
        digest0 = db.proc.memory.content_digest()
        instr0 = db.proc.cpu.instructions_executed
        wal0 = {p: kernel.vfs.read_file(p)
                for p in ("/db/t.tbl",) if kernel.vfs.exists(p)}

        db.execute("insert into t 99 suffix")
        db.checkpoint()
        assert db.proc.memory.content_digest() != digest0 \
            or db.proc.cpu.instructions_executed != instr0

        stats = snap.restore()
        assert stats.dirty_pages > 0
        assert stats.bytes_restored == stats.dirty_pages * PAGE_SIZE
        assert db.proc.memory.content_digest() == digest0
        assert db.proc.cpu.instructions_executed == instr0
        for path, data in wal0.items():
            assert kernel.vfs.read_file(path) == data
        snap.detach()

    def test_replay_is_deterministic(self):
        kernel, db = self._workload()
        snap = MachineSnapshot.capture(kernel.processes)

        def suffix():
            db.execute("insert into t 99 suffix")
            rows = db.execute("select from t where k 99")
            return (db.proc.memory.content_digest(),
                    db.proc.cpu.instructions_executed, rows)

        first = suffix()
        snap.restore()
        second = suffix()
        assert first == second
        snap.detach()

    def test_restore_drops_processes_spawned_after_capture(self):
        from repro.runtime import Process

        kernel, db = self._workload()
        count0 = len(kernel.processes)
        snap = MachineSnapshot.capture(kernel.processes)
        Process(kernel, LINUX_X86)      # driver process born post-capture
        assert len(kernel.processes) == count0 + 1
        snap.restore()
        assert len(kernel.processes) == count0
        snap.detach()

    def test_image_digest_is_stable(self):
        kernel, db = self._workload()
        snap = MachineSnapshot.capture(kernel.processes)
        kernel2, db2 = self._workload()
        snap2 = MachineSnapshot.capture(kernel2.processes)
        assert snap.image_digest == snap2.image_digest
        snap.detach()
        snap2.detach()


class TestSnapshotCache:
    def test_acquire_builds_once_then_reuses(self):
        cache = SnapshotCache()
        built = []

        def build():
            built.append(1)
            return object()

        key = ("digest", "workload", "close")
        first = cache.acquire(key, build)
        cache.release(key, first)
        second = cache.acquire(key, build)
        assert second is first
        assert len(built) == 1
        stats = cache.stats()
        assert stats["built"] == 1
        assert stats["reused"] == 1

    def test_distinct_keys_do_not_share(self):
        cache = SnapshotCache()
        a = cache.acquire(("d", "w", "read"), object)
        b = cache.acquire(("d", "w", "write"), object)
        assert a is not b

    def test_discard_drops_a_poisoned_instance(self):
        cache = SnapshotCache()
        key = ("d", "w", "open")
        inst = cache.acquire(key, object)
        cache.discard(inst)
        again = cache.acquire(key, object)
        assert again is not inst
        assert cache.stats()["discarded"] == 1

    def test_prime_prebuilds_for_fork_inheritance(self):
        cache = SnapshotCache()
        key = ("d", "w", "fsync")
        assert cache.prime(key, object) is True
        assert cache.prime(key, object) is False    # already present
        assert cache.stats()["built"] == 1
        inst = cache.acquire(key, object)
        assert inst is not None
        assert cache.stats()["reused"] == 1
